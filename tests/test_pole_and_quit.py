"""Behavioural tests for the pole fast path and QuIT (§4)."""

import pytest

from repro.core import (
    BPlusTree,
    PoleBPlusTree,
    QuITNoResetTree,
    QuITNoVariableSplitTree,
    QuITTree,
    TreeConfig,
)
from repro.sortedness import generate_keys
from repro.workloads import alternating_stress_stream

from conftest import validate_tree

CFG = TreeConfig(leaf_capacity=16, internal_capacity=16)
CFG64 = TreeConfig(leaf_capacity=64, internal_capacity=64)


def ingest(cls, keys, cfg=CFG):
    tree = cls(cfg)
    for k in keys:
        tree.insert(int(k), int(k))
    return tree


class TestPoleTree:
    def test_sorted_all_fast(self):
        tree = ingest(PoleBPlusTree, range(1000))
        assert tree.stats.fast_insert_fraction == 1.0
        validate_tree(tree)

    def test_pole_not_moved_by_top_inserts(self):
        tree = ingest(PoleBPlusTree, range(500))
        pole = tree.fast_path_leaf
        tree.insert(7, 7)  # duplicate upsert far below: top-insert
        assert tree.fast_path_leaf is pole

    def test_only_one_miss_per_backward_outlier(self):
        # Unlike lil, the pole survives an out-of-order entry: the next
        # in-order entry is fast again (§4.1).
        tree = ingest(PoleBPlusTree, range(500))
        stats0 = tree.stats.snapshot()
        tree.insert(100, -1)  # backward outlier (upsert): top-insert
        tree.insert(500, 500)  # in-order: FAST (pole unchanged)
        delta = tree.stats.diff(stats0)
        assert delta.top_inserts == 1
        assert delta.fast_inserts == 1

    def test_outlier_split_marks_pole_next(self):
        # Ride enough far-ahead keys into the pole that a split's new
        # node is judged all-outliers: the pole stays and the new node is
        # remembered as pole_next (Fig. 6c).
        tree = ingest(PoleBPlusTree, range(100), CFG64)
        for k in range(100_000, 100_068):
            tree.insert(k, k)
        assert tree.pole_next is not None
        # The fast path still serves the in-order frontier.
        stats0 = tree.stats.snapshot()
        tree.insert(100, 100)
        assert tree.stats.diff(stats0).fast_inserts == 1
        validate_tree(tree)

    def test_catch_up_when_stream_reaches_outliers(self):
        # Outliers displaced ~400 ahead: once a split classifies them as
        # pole_next, the advancing dense stream eventually crosses into
        # that node and the pole catches up (§4.2).
        tree = ingest(PoleBPlusTree, range(100), CFG64)
        for k in range(500, 568):
            tree.insert(k, k)
        k = 100
        while tree.stats.pole_catchups == 0 and k < 700:
            tree.insert(k, k)
            k += 1
        assert tree.stats.pole_catchups >= 1
        validate_tree(tree)

    def test_beats_lil_under_bods(self):
        from repro.core import LilBPlusTree

        keys = generate_keys(30_000, 0.25, 1.0, seed=8)
        pole = ingest(PoleBPlusTree, keys, CFG64)
        lil = ingest(LilBPlusTree, keys, CFG64)
        assert (
            pole.stats.fast_insert_fraction
            > lil.stats.fast_insert_fraction
        )

    def test_extensional_equality_with_classical(self):
        keys = generate_keys(5_000, 0.10, 1.0, seed=9)
        pole = ingest(PoleBPlusTree, keys)
        classical = ingest(BPlusTree, keys)
        assert list(pole.items()) == list(classical.items())


class TestQuITVariableSplit:
    def test_sorted_data_packs_leaves(self):
        tree = ingest(QuITTree, range(2000), CFG64)
        occ = tree.occupancy()
        # Variable split leaves (capacity-1)/capacity occupancy for
        # fully sorted ingestion vs 50% for the classical tree.
        assert occ.avg_occupancy > 0.9
        classical = ingest(BPlusTree, range(2000), CFG64)
        assert classical.occupancy().avg_occupancy < 0.6

    def test_variable_split_counted(self):
        tree = ingest(QuITTree, range(2000), CFG64)
        assert tree.stats.variable_splits > 0

    def test_near_sorted_occupancy_beats_classical(self):
        keys = generate_keys(30_000, 0.05, 1.0, seed=10)
        quit_tree = ingest(QuITTree, keys, CFG64)
        classical = ingest(BPlusTree, keys, CFG64)
        assert (
            quit_tree.occupancy().avg_occupancy
            > classical.occupancy().avg_occupancy + 0.10
        )

    def test_scrambled_occupancy_comparable(self):
        keys = generate_keys(20_000, 1.0, 1.0, seed=11)
        quit_tree = ingest(QuITTree, keys, CFG64)
        classical = ingest(BPlusTree, keys, CFG64)
        assert abs(
            quit_tree.occupancy().avg_occupancy
            - classical.occupancy().avg_occupancy
        ) < 0.1

    def test_memory_smaller_for_sorted(self):
        quit_tree = ingest(QuITTree, range(5000), CFG64)
        classical = ingest(BPlusTree, range(5000), CFG64)
        # Table 2 headline: ~1.96x reduction for fully sorted data.
        ratio = classical.memory_bytes() / quit_tree.memory_bytes()
        assert ratio > 1.7


class TestQuITRedistribution:
    def test_redistribution_occurs_on_near_sorted(self):
        keys = generate_keys(30_000, 0.05, 1.0, seed=12)
        tree = ingest(QuITTree, keys, CFG64)
        assert tree.stats.redistributions > 0
        validate_tree(tree)

    def test_contents_survive_redistribution(self):
        keys = generate_keys(10_000, 0.03, 1.0, seed=13)
        tree = ingest(QuITTree, keys)
        classical = ingest(BPlusTree, keys)
        assert list(tree.items()) == list(classical.items())


class TestQuITReset:
    def test_reset_fires_on_scrambled(self):
        keys = generate_keys(10_000, 1.0, 1.0, seed=14)
        tree = ingest(QuITTree, keys, CFG64)
        assert tree.stats.pole_resets > 0

    def test_no_reset_variant_traps_on_stress(self):
        stream = alternating_stress_stream(10_000, seed=15)
        trapped = ingest(QuITNoResetTree, stream, CFG64)
        full = ingest(QuITTree, stream, CFG64)
        # The reset strategy is what recovers the fast path (Fig. 12).
        assert (
            full.stats.fast_insert_fraction
            > trapped.stats.fast_insert_fraction + 0.2
        )

    def test_reset_threshold_respected(self):
        cfg = TreeConfig(
            leaf_capacity=64, internal_capacity=64, reset_after=3
        )
        tree = ingest(QuITTree, range(200), cfg)
        stats0 = tree.stats.snapshot()
        # Three consecutive far-below top-inserts trigger a reset.
        tree.insert(10, -1)
        tree.insert(20, -1)
        tree.insert(30, -1)
        assert tree.stats.diff(stats0).pole_resets == 1

    def test_fast_inserts_resume_after_reset(self):
        cfg = TreeConfig(
            leaf_capacity=64, internal_capacity=64, reset_after=3
        )
        tree = ingest(QuITTree, range(200), cfg)
        for k in (10, 20, 30):  # trigger reset onto a low leaf
            tree.insert(k, -1)
        stats0 = tree.stats.snapshot()
        tree.insert(31, 0)  # adjacent to the reset leaf's range
        assert tree.stats.diff(stats0).fast_inserts == 1


class TestQuITNoVariableSplit:
    def test_occupancy_matches_classical(self):
        tree = ingest(QuITNoVariableSplitTree, range(2000), CFG64)
        occ = tree.occupancy()
        assert 0.45 <= occ.avg_occupancy <= 0.6

    def test_fast_path_still_works(self):
        keys = generate_keys(20_000, 0.05, 1.0, seed=16)
        tree = ingest(QuITNoVariableSplitTree, keys, CFG64)
        assert tree.stats.fast_insert_fraction > 0.85


class TestPaperFigure11Shape:
    """The core fidelity check: fast-insert fractions and occupancy match
    the paper's Fig. 11 values (+-6 points) at L=100%."""

    # (K, paper_lil_fast, paper_quit_fast, paper_lil_occ, paper_quit_occ)
    PAPER_ROWS = [
        (0.00, 100, 100, 50, 100),
        (0.01, 99, 100, 50, 74),
        (0.03, 94, 96, 51, 72),
        (0.05, 91, 92, 52, 69),
        (0.25, 57, 70, 60, 65),
        (0.50, 26, 46, 62, 61),
    ]

    @pytest.mark.parametrize(
        "k,lil_fast,quit_fast,lil_occ,quit_occ", PAPER_ROWS
    )
    def test_fig11_row(self, k, lil_fast, quit_fast, lil_occ, quit_occ):
        from repro.core import LilBPlusTree

        keys = generate_keys(30_000, k, 1.0, seed=11)
        lil = ingest(LilBPlusTree, keys, CFG64)
        qt = ingest(QuITTree, keys, CFG64)
        tol = 8
        assert abs(lil.stats.fast_insert_fraction * 100 - lil_fast) <= tol
        assert abs(qt.stats.fast_insert_fraction * 100 - quit_fast) <= tol
        assert abs(lil.occupancy().avg_occupancy * 100 - lil_occ) <= tol
        assert abs(qt.occupancy().avg_occupancy * 100 - quit_occ) <= tol
