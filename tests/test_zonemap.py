"""Tests for zonemaps."""

from repro.sware.zonemap import ZoneMap, ZoneMapIndex


class TestZoneMap:
    def test_empty_contains_nothing(self):
        zone = ZoneMap()
        assert not zone.contains(5)
        assert not zone.overlaps(0, 100)

    def test_observe_extends(self):
        zone = ZoneMap()
        for k in (10, 5, 20):
            zone.observe(k)
        assert zone.min_key == 5
        assert zone.max_key == 20
        assert zone.count == 3

    def test_contains_inclusive(self):
        zone = ZoneMap()
        zone.observe(10)
        zone.observe(20)
        assert zone.contains(10)
        assert zone.contains(20)
        assert zone.contains(15)
        assert not zone.contains(9)
        assert not zone.contains(21)

    def test_overlaps_half_open(self):
        zone = ZoneMap()
        zone.observe(10)
        zone.observe(20)
        assert zone.overlaps(0, 11)
        assert zone.overlaps(20, 30)
        assert not zone.overlaps(21, 30)
        assert not zone.overlaps(0, 10)  # end exclusive

    def test_single_key_zone(self):
        zone = ZoneMap()
        zone.observe(7)
        assert zone.contains(7)
        assert zone.overlaps(7, 8)


class TestZoneMapIndex:
    def test_grows_on_demand(self):
        index = ZoneMapIndex()
        index.zone(3).observe(1)
        assert len(index) == 4

    def test_pages_containing(self):
        index = ZoneMapIndex()
        for page_no, (lo, hi) in enumerate([(0, 10), (20, 30), (5, 25)]):
            index.zone(page_no).observe(lo)
            index.zone(page_no).observe(hi)
        assert list(index.pages_containing(7)) == [0, 2]
        assert list(index.pages_containing(22)) == [1, 2]
        assert list(index.pages_containing(50)) == []

    def test_pages_overlapping(self):
        index = ZoneMapIndex()
        for page_no, (lo, hi) in enumerate([(0, 10), (20, 30)]):
            index.zone(page_no).observe(lo)
            index.zone(page_no).observe(hi)
        assert list(index.pages_overlapping(8, 22)) == [0, 1]
        assert list(index.pages_overlapping(11, 20)) == []

    def test_clear(self):
        index = ZoneMapIndex()
        index.zone(0).observe(1)
        index.clear()
        assert len(index) == 0

    def test_memory_accounting(self):
        index = ZoneMapIndex()
        assert index.memory_bytes == 0
        index.zone(9)
        assert index.memory_bytes == 10 * 12
