"""Tests for fast-path metadata structures and the Table 1 digest."""

from repro.core.metadata import (
    METADATA_FIELDS,
    FastPathState,
    PoleState,
    extra_metadata_bytes,
    metadata_bytes,
)
from repro.core.node import LeafNode


class TestFastPathState:
    def test_empty_rejects(self):
        assert not FastPathState().accepts(5)

    def test_unbounded(self):
        state = FastPathState(leaf=LeafNode())
        assert state.accepts(-1_000_000)
        assert state.accepts(1_000_000)

    def test_lower_bound(self):
        state = FastPathState(leaf=LeafNode(), low=10)
        assert not state.accepts(9)
        assert state.accepts(10)

    def test_upper_bound_exclusive(self):
        state = FastPathState(leaf=LeafNode(), low=0, high=20)
        assert state.accepts(19)
        assert not state.accepts(20)


class TestPoleState:
    def test_defaults(self):
        state = PoleState()
        assert state.prev is None
        assert state.next_candidate is None
        assert state.fails == 0


class TestTable1:
    def test_all_four_indexes_present(self):
        assert set(METADATA_FIELDS) == {
            "B+-tree", "tail-B+-tree", "lil-B+-tree", "QuIT",
        }

    def test_field_counts_match_paper(self):
        # Table 1 row counts: 3, 6, 8, 12 checkmarks respectively.
        assert len(METADATA_FIELDS["B+-tree"]) == 3
        assert len(METADATA_FIELDS["tail-B+-tree"]) == 6
        assert len(METADATA_FIELDS["lil-B+-tree"]) == 8
        assert len(METADATA_FIELDS["QuIT"]) == 12

    def test_supersets(self):
        base = set(METADATA_FIELDS["B+-tree"])
        tail = set(METADATA_FIELDS["tail-B+-tree"])
        lil = set(METADATA_FIELDS["lil-B+-tree"])
        quit_ = set(METADATA_FIELDS["QuIT"])
        assert base < tail < lil < quit_

    def test_quit_under_20_extra_bytes(self):
        # The paper: "QuIT needs less than 20 bytes of additional
        # metadata" (over the lil fast path).
        assert 0 < extra_metadata_bytes("QuIT") < 20

    def test_bytes_monotone(self):
        order = ["B+-tree", "tail-B+-tree", "lil-B+-tree", "QuIT"]
        sizes = [metadata_bytes(n) for n in order]
        assert sizes == sorted(sizes)
