"""Dict-style API sugar, bulk ops, and persistence round-trips."""

import pytest

from repro.core import (
    BPlusTree,
    PersistenceError,
    QuITTree,
    TreeConfig,
    load_tree,
    save_tree,
)

from conftest import shuffled_keys


class TestDictStyleApi:
    def test_getitem(self, small_config, any_tree_class):
        tree = any_tree_class(small_config)
        tree[5] = "five"
        assert tree[5] == "five"

    def test_getitem_missing_raises(self, small_config, any_tree_class):
        tree = any_tree_class(small_config)
        with pytest.raises(KeyError):
            tree[404]

    def test_delitem(self, small_config, any_tree_class):
        tree = any_tree_class(small_config)
        tree[1] = 1
        del tree[1]
        assert 1 not in tree
        with pytest.raises(KeyError):
            del tree[1]

    def test_iter_yields_sorted_keys(self, small_config, any_tree_class):
        tree = any_tree_class(small_config)
        for k in (3, 1, 2):
            tree[k] = k
        assert list(tree) == [1, 2, 3]

    def test_bool(self, small_config, any_tree_class):
        tree = any_tree_class(small_config)
        assert not tree
        tree[1] = 1
        assert tree

    def test_update(self, small_config, any_tree_class):
        tree = any_tree_class(small_config)
        tree.update((k, k * 2) for k in range(100))
        assert len(tree) == 100
        assert tree[40] == 80


class TestDeleteRange:
    def test_removes_half_open_range(self, small_config, any_tree_class):
        tree = any_tree_class(small_config)
        tree.update((k, k) for k in range(200))
        removed = tree.delete_range(50, 150)
        assert removed == 100
        assert list(tree) == list(range(50)) + list(range(150, 200))
        tree.validate(check_min_fill=False)

    def test_empty_range(self, small_config):
        tree = BPlusTree(small_config)
        tree.update((k, k) for k in range(10))
        assert tree.delete_range(100, 200) == 0
        assert len(tree) == 10

    def test_whole_tree(self, small_config, any_tree_class):
        tree = any_tree_class(small_config)
        tree.update((k, k) for k in shuffled_keys(300, seed=1))
        assert tree.delete_range(-1, 10_000) == 300
        assert len(tree) == 0
        tree.validate()


class TestPersistence:
    def test_round_trip(self, tmp_path, small_config, any_tree_class):
        tree = any_tree_class(small_config)
        tree.update((k, f"v{k}") for k in shuffled_keys(500, seed=2))
        path = tmp_path / "tree.quit"
        assert save_tree(tree, path) == 500
        loaded = load_tree(path)
        assert list(loaded.items()) == list(tree.items())
        loaded.validate(check_min_fill=False)

    def test_reload_as_different_variant(self, tmp_path, small_config):
        tree = BPlusTree(small_config)
        tree.update((k, k) for k in range(300))
        path = tmp_path / "t.quit"
        save_tree(tree, path)
        loaded = load_tree(path, tree_class=QuITTree)
        assert isinstance(loaded, QuITTree)
        # Fast path keeps working after a reload.
        for k in range(300, 400):
            loaded.insert(k, k)
        assert loaded.stats.fast_insert_fraction == 1.0

    def test_reload_packs_leaves(self, tmp_path, small_config):
        tree = BPlusTree(small_config)
        tree.update((k, k) for k in range(1000))
        assert tree.occupancy().avg_occupancy < 0.6
        path = tmp_path / "t.quit"
        save_tree(tree, path)
        loaded = load_tree(path)
        assert loaded.occupancy().avg_occupancy > 0.9

    def test_capacity_override(self, tmp_path, small_config):
        tree = BPlusTree(small_config)
        tree.update((k, k) for k in range(100))
        path = tmp_path / "t.quit"
        save_tree(tree, path)
        loaded = load_tree(
            path, config=TreeConfig(leaf_capacity=32, internal_capacity=32)
        )
        assert loaded.config.leaf_capacity == 32

    def test_literal_values_round_trip(self, tmp_path, small_config):
        tree = BPlusTree(small_config)
        values = [None, True, 3.5, "text", (1, 2), [1, "a"], {"k": 1}]
        for i, v in enumerate(values):
            tree.insert(i, v)
        path = tmp_path / "t.quit"
        save_tree(tree, path)
        loaded = load_tree(path)
        assert [v for _, v in loaded.items()] == values

    def test_rejects_non_literal_value(self, tmp_path, small_config):
        tree = BPlusTree(small_config)
        tree.insert(1, object())
        with pytest.raises(PersistenceError):
            save_tree(tree, tmp_path / "t.quit")

    def test_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "bogus.quit"
        path.write_text("not a tree\n")
        with pytest.raises(PersistenceError):
            load_tree(path)

    def test_rejects_truncated_file(self, tmp_path, small_config):
        tree = BPlusTree(small_config)
        tree.update((k, k) for k in range(50))
        path = tmp_path / "t.quit"
        save_tree(tree, path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-5]) + "\n")
        with pytest.raises(PersistenceError):
            load_tree(path)

    def test_empty_tree_round_trip(self, tmp_path, small_config):
        tree = BPlusTree(small_config)
        path = tmp_path / "empty.quit"
        assert save_tree(tree, path) == 0
        loaded = load_tree(path)
        assert len(loaded) == 0
