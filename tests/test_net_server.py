"""Server/client end-to-end behavior: dedup, deadlines, typed refusals,
health integration, quorum amortization, and graceful drain."""

import random
import time

import pytest

from repro.core import DurableTree, TreeConfig
from repro.core.bptree import BPlusTree
from repro.core.quit_tree import QuITTree
from repro.net import (
    BackgroundServer,
    DeadlineError,
    QuitClient,
    RetriesExhaustedError,
    ServerFencedError,
    ServerReadOnlyError,
)
from repro.net import protocol
from repro.replication import InProcessTransport, Primary, Replica

CFG = TreeConfig(leaf_capacity=8, internal_capacity=8)


@pytest.fixture
def served(tmp_path):
    durable = DurableTree(QuITTree(CFG), tmp_path / "state", fsync="group")
    with BackgroundServer(durable, admin=True) as bg:
        client = QuitClient("127.0.0.1", bg.port, deadline=5.0)
        yield durable, bg, client
        client.close()
    durable.close()


class TestBasicSurface:
    def test_crud_round_trip(self, served):
        durable, bg, c = served
        c.insert(1, "one")
        c[2] = "two"
        assert c.get(1) == "one"
        assert c[2] == "two"
        assert c.get(404, "dflt") == "dflt"
        with pytest.raises(KeyError):
            c[404]
        assert 1 in c and 404 not in c
        assert c.delete(1) is True
        assert c.delete(1) is False
        assert len(c) == 1

    def test_batched_surface(self, served):
        durable, bg, c = served
        assert c.insert_many([(i, i * i) for i in range(50)]) == 50
        assert c.insert_many([]) == 0
        assert c.get_many([3, 4, 999], -1) == [9, 16, -1]
        assert c.count_range(0, 9) == 9
        assert c.range_query(2, 5) == [(2, 4), (3, 9), (4, 16)]

    def test_range_iter_pages_across_requests(self, served):
        durable, bg, c = served
        c.scan_page = 7  # force multiple SCAN round trips
        c.insert_many([(i, i) for i in range(40)])
        got = list(c.range_iter(5, 30))
        assert got == [(i, i) for i in range(5, 30)]

    def test_check_and_scrub(self, served):
        durable, bg, c = served
        c.insert_many([(i, i) for i in range(30)])
        assert c.check() == []
        report = c.scrub()
        assert report["issues"] == []

    def test_status_counters(self, served):
        durable, bg, c = served
        c.insert(1, 1)
        c.get(1)
        status = c.status()
        assert status["role"] == "durable"
        assert status["health"] == "healthy"
        assert status["stats"]["net_applied"] >= 1
        assert status["stats"]["net_reads"] >= 1
        assert status["boot_id"] == bg.server.boot_id

    def test_writes_are_durable_after_kill(self, served, tmp_path):
        """Acked mutations survive an abrupt server+process death."""
        durable, bg, c = served
        acked = {}
        for i in range(100):
            c.insert(i, i * 3)
            acked[i] = i * 3
        bg.kill()
        durable.abort()  # group flusher dies unflushed, like a crash
        recovered, _ = DurableTree.recover(tmp_path / "state", QuITTree, CFG)
        try:
            for key, value in acked.items():
                assert recovered.get(key) == value
        finally:
            recovered.close()


class TestIdempotency:
    def _twice(self, client, op, payload):
        rid = random.getrandbits(63) | 1
        until = time.monotonic() + 5.0
        first = client._exchange(op, rid, payload, until)
        second = client._exchange(op, rid, payload, until)
        return first, second

    def test_duplicate_put_not_reapplied(self, served):
        durable, bg, c = served
        (st1, fl1, _), (st2, fl2, _) = self._twice(
            c, protocol.OP_PUT, (7, "v")
        )
        assert st1 == st2 == protocol.ST_OK
        assert fl1 & protocol.FLAG_APPLIED
        assert not (fl2 & protocol.FLAG_APPLIED)
        assert fl2 & protocol.FLAG_DEDUPED
        assert bg.stats.net_dedup_hits == 1
        assert bg.stats.net_applied == 1

    def test_duplicate_delete_preserves_existed_bool(self, served):
        durable, bg, c = served
        c.insert(7, "v")
        (st1, _, res1), (st2, fl2, res2) = self._twice(
            c, protocol.OP_DELETE, 7
        )
        assert st1 == st2 == protocol.ST_OK
        # The key was deleted by the first delivery; a re-apply would
        # answer False.  Dedup must echo the original True.
        assert res1 is True and res2 is True
        assert fl2 & protocol.FLAG_DEDUPED

    def test_duplicate_insert_many_preserves_added_count(self, served):
        durable, bg, c = served
        c.insert(0, "preexisting")
        batch = [(i, i) for i in range(4)]
        (st1, _, res1), (st2, fl2, res2) = self._twice(
            c, protocol.OP_PUT_MANY, batch
        )
        assert st1 == st2 == protocol.ST_OK
        # 3 new keys (0 existed); a re-apply would answer 0.
        assert res1 == 3 and res2 == 3
        assert fl2 & protocol.FLAG_DEDUPED

    def test_dedup_table_is_bounded(self, tmp_path):
        durable = DurableTree(BPlusTree(), tmp_path / "b", fsync="none")
        with BackgroundServer(durable, dedup_capacity=8) as bg:
            c = QuitClient("127.0.0.1", bg.port)
            for i in range(50):
                c.insert(i, i)
            assert len(bg.server._dedup) <= 8
            c.close()
        durable.close()


class TestTypedRefusals:
    def test_read_only_serves_reads_refuses_writes(self, served):
        durable, bg, c = served
        c.insert(1, "one")
        durable.health.mark_read_only(None)
        # Reads keep serving.
        assert c.get(1) == "one"
        # Writes refuse with the typed error, without burning retries.
        before = bg.stats.net_writes
        with pytest.raises(ServerReadOnlyError):
            c.insert(2, "two")
        assert bg.stats.net_writes == before + 1  # exactly one attempt
        assert bg.stats.net_readonly_refusals >= 1
        durable.health.restore()
        c.insert(2, "two")
        assert c.get(2) == "two"

    def test_deadline_budget_zero_refused(self, served):
        durable, bg, c = served
        with pytest.raises(DeadlineError):
            c.insert(1, "x", deadline=0.000001)

    def test_bad_payload_shape_is_request_error(self, served):
        from repro.net import RequestError
        durable, bg, c = served
        with pytest.raises(RequestError):
            c.request(protocol.OP_PUT, "not-a-pair")

    def test_admin_disabled_by_default(self, tmp_path):
        durable = DurableTree(BPlusTree(), tmp_path / "b", fsync="none")
        with BackgroundServer(durable) as bg:  # admin defaults off
            from repro.net import RequestError
            c = QuitClient("127.0.0.1", bg.port)
            with pytest.raises(RequestError):
                c.admin("sleep", 0)
            c.close()
        durable.close()


class TestPrimaryBackend:
    def _cluster(self, tmp_path, *, required_acks=1, ack_deadline=None):
        durable = DurableTree(
            QuITTree(CFG), tmp_path / "p", fsync="group"
        )
        primary = Primary(
            durable, node_id="p", required_acks=required_acks,
            ack_deadline=ack_deadline,
        )
        replica = Replica(
            tmp_path / "r0", InProcessTransport(primary),
            tree_class=QuITTree, config=CFG, name="r0",
        )
        replica.bootstrap()
        primary.attach(replica)
        return primary, replica

    def test_quorum_confirmed_writes(self, tmp_path):
        primary, replica = self._cluster(tmp_path)
        with BackgroundServer(primary) as bg:
            c = QuitClient("127.0.0.1", bg.port)
            for i in range(40):
                c.insert(i, i)
            assert replica.durable.get(20) == 20
            # Amortization: quorum rounds ≪ writes under pipelining.
            assert primary.ack_rounds <= 40
            assert c.status()["role"] == "primary"
            c.close()
        primary.close()
        replica.close()

    def test_partitioned_quorum_degrades_to_retry_later(self, tmp_path):
        primary, replica = self._cluster(tmp_path, ack_deadline=0.15)
        with BackgroundServer(primary) as bg:
            c = QuitClient(
                "127.0.0.1", bg.port, deadline=1.0,
            )
            c.insert(1, "before")
            replica.transport.partition()
            # Whichever trips first — the retry budget or the request
            # deadline — the caller gets a typed, bounded failure
            # instead of a hang on the dead quorum.
            with pytest.raises((RetriesExhaustedError, DeadlineError)):
                c.insert(2, "during")
            assert bg.stats.net_quorum_refusals >= 1
            replica.transport.heal()
            c.insert(3, "after")
            assert c.get(3) == "after"
            c.close()
        primary.close()
        replica.close()

    def test_fenced_primary_surfaces_without_retry(self, tmp_path):
        primary, replica = self._cluster(tmp_path, required_acks=0)
        with BackgroundServer(primary) as bg:
            c = QuitClient("127.0.0.1", bg.port)
            c.insert(1, "pre-fence")
            primary.fence(primary.epoch + 1)
            before = bg.stats.net_writes
            with pytest.raises(ServerFencedError):
                c.insert(2, "post-fence")
            assert bg.stats.net_writes == before + 1
            assert bg.stats.net_fenced_refusals >= 1
            # Reads are never fenced (they acknowledge nothing).
            assert c.get(1) == "pre-fence"
            c.close()
        primary.close()
        replica.close()


class TestGracefulDrain:
    def test_drain_settles_and_checkpoints(self, tmp_path):
        durable = DurableTree(
            QuITTree(CFG), tmp_path / "state", fsync="group"
        )
        bg = BackgroundServer(durable).start()
        c = QuitClient("127.0.0.1", bg.port)
        c.insert_many([(i, i) for i in range(200)])
        c.close()
        bg.stop()
        # Drain checkpointed: WAL truncated, snapshot carries the state.
        from repro.core.wal import segment_paths
        from repro.core.durable import WAL_DIRNAME
        assert durable.snapshot_path.exists()
        live = [
            p for p in segment_paths(tmp_path / "state" / WAL_DIRNAME)
        ]
        durable.close()
        recovered, report = DurableTree.recover(
            tmp_path / "state", QuITTree, CFG
        )
        try:
            assert len(recovered) == 200
            assert report.snapshot_entries == 200
        finally:
            recovered.close()

    def test_draining_server_sheds_new_requests(self, tmp_path):
        from repro.net import NetError
        durable = DurableTree(BPlusTree(), tmp_path / "b", fsync="none")
        bg = BackgroundServer(durable).start()
        c = QuitClient(
            "127.0.0.1", bg.port, deadline=0.6,
        )
        c.insert(1, 1)
        bg.server.admission.draining = True
        with pytest.raises(NetError):
            c.insert(2, 2)
        bg.server.admission.draining = False
        bg.stop()
        c.close()
        durable.close()

    def test_boot_id_changes_across_tenures(self, tmp_path):
        durable = DurableTree(BPlusTree(), tmp_path / "b", fsync="none")
        bg1 = BackgroundServer(durable).start()
        port = bg1.port
        c = QuitClient("127.0.0.1", port)
        c.insert(1, 1)
        boot1 = c.last_boot_id
        bg1.stop()
        c.close()
        bg2 = BackgroundServer(durable, port=0).start()
        c2 = QuitClient("127.0.0.1", bg2.port)
        c2.insert(2, 2)
        boot2 = c2.last_boot_id
        assert boot1 != boot2
        c2.close()
        bg2.stop()
        durable.close()
