"""The acceptance property for the durability layer.

For EVERY registered failpoint: logically kill the process mid-way
through a random ~1k-op workload (inserts, deletes, batched inserts,
periodic checkpoints) on a ``DurableTree`` with ``fsync="always"``,
recover from the directory, and compare against a dict oracle of
acknowledged ops.

The contract being asserted:

* **no lost acknowledged writes** — every op that returned before the
  crash is present after recovery;
* **no phantom keys** — recovery never invents state.  The only
  tolerated ambiguity is the single *in-flight* op: log-then-apply
  means a crash after the WAL append but before the acknowledgement
  can leave that one op durable.  Recovered state must therefore equal
  ``apply(acked)`` or ``apply(acked + [inflight])`` — nothing else;
* a **corrupted WAL tail yields a RecoveryReport**, never an
  exception, and the recovered state is some exact prefix of the
  acknowledged history.
"""

import random

import pytest

from repro.core import DurableTree, QuITTree, TreeConfig
from repro.core.durable import WAL_DIRNAME
from repro.core.wal import segment_paths
from repro.testing import KNOWN_FAILPOINTS, SimulatedCrash, failpoints

CFG = TreeConfig(leaf_capacity=8, internal_capacity=8)

#: Small segments so rotation-related failpoints actually fire inside a
#: 1k-op workload.
SEGMENT_BYTES = 512
N_OPS = 1000
KEYSPACE = 2000


def make_ops(seed: int, n: int = N_OPS) -> list[tuple]:
    """A deterministic random workload mixing every logged op kind."""
    rng = random.Random(seed)
    ops = []
    for _ in range(n):
        r = rng.random()
        if r < 0.55:
            ops.append(("i", rng.randrange(KEYSPACE), rng.randrange(10**6)))
        elif r < 0.75:
            ops.append(("d", rng.randrange(KEYSPACE)))
        elif r < 0.92:
            base = rng.randrange(KEYSPACE)
            batch = [
                (base + j, rng.randrange(10**6))
                for j in range(rng.randrange(1, 24))
            ]
            ops.append(("m", batch))
        else:
            ops.append(("c",))
    return ops


def apply_op(oracle: dict, op: tuple) -> None:
    tag = op[0]
    if tag == "i":
        oracle[op[1]] = op[2]
    elif tag == "d":
        oracle.pop(op[1], None)
    elif tag == "m":
        oracle.update(dict(op[1]))
    # "c" (checkpoint) changes no logical state.


def run_workload(directory, ops, fsync="always"):
    """Apply ops until completion or SimulatedCrash.

    Returns ``(oracle_of_acked_ops, inflight_op_or_None, facade_or_None)``.
    On a crash the facade is NOT closed — a dead process flushes
    nothing, which is exactly the state recovery must cope with.  Under
    ``fsync="group"`` the WAL is *aborted* instead: the flusher thread
    would otherwise keep absorbing appends after the "process died",
    which no real crash allows.
    """
    t = DurableTree(
        QuITTree(CFG), directory, segment_bytes=SEGMENT_BYTES, fsync=fsync
    )
    oracle: dict = {}
    op = None
    try:
        for op in ops:
            if op[0] == "c":
                t.checkpoint()
            elif op[0] == "i":
                t.insert(op[1], op[2])
            elif op[0] == "d":
                t.delete(op[1])
            else:
                t.insert_many(op[1])
            apply_op(oracle, op)  # acknowledged
        return oracle, None, t
    except SimulatedCrash:
        t.abort()
        return oracle, op, None


def allowed_states(oracle: dict, inflight) -> list[dict]:
    """The oracle, plus (when an op was in flight) oracle+that-op."""
    states = [oracle]
    if inflight is not None and inflight[0] != "c":
        extra = dict(oracle)
        apply_op(extra, inflight)
        if extra != oracle:
            states.append(extra)
    return states


# The single-node workload below cannot reach replication sites; those
# are crash-tested by tests/test_replication.py and the chaos soak.
# The wal.group.* sites only exist on the group-commit flusher, which
# fsync="always" never starts — they get their own sweep below.
CORE_FAILPOINTS = [
    name
    for name in KNOWN_FAILPOINTS
    if not name.startswith(("repl.", "wal.group."))
]

#: Under fsync="group" every core site fires — the shared ones from the
#: flusher thread (write/fsync/rotate) or the writer thread (enqueue),
#: plus the three batch-boundary sites unique to the pipeline.
GROUP_FAILPOINTS = [
    name for name in KNOWN_FAILPOINTS if not name.startswith("repl.")
]


class TestCrashAtEveryFailpoint:
    @pytest.mark.parametrize("hits_before", [0, 2], ids=["hit0", "hit2"])
    @pytest.mark.parametrize("failpoint", CORE_FAILPOINTS)
    def test_recovers_to_oracle(self, tmp_path, failpoint, hits_before):
        seed = CORE_FAILPOINTS.index(failpoint) * 10 + hits_before
        ops = make_ops(seed)
        with failpoints.active(
            failpoint, mode="crash", hits_before=hits_before
        ) as state:
            oracle, inflight, survivor = run_workload(tmp_path, ops)
        assert survivor is None and state.fired == 1, (
            f"{failpoint} never fired — the workload does not cover it"
        )
        recovered, report = DurableTree.recover(tmp_path, QuITTree, CFG)
        got = dict(recovered.tree.items())
        states = allowed_states(oracle, inflight)
        assert any(got == s for s in states), (
            f"crash at {failpoint}: recovered state is neither the "
            f"acknowledged oracle ({len(oracle)} keys) nor "
            f"oracle+inflight {inflight!r}; got {len(got)} keys "
            f"(missing={len(set(oracle) - set(got))}, "
            f"phantom={len(set(got) - set(states[-1]))})"
        )
        # Structural integrity and a working fast path after replay.
        assert recovered.check(check_min_fill=False) == []
        assert report.scrub is not None
        recovered.insert(10**9, "post-recovery")
        assert recovered.get(10**9) == "post-recovery"
        recovered.close()

    def test_acked_writes_survive_a_second_crash_and_recovery(
        self, tmp_path
    ):
        """Crash → recover → keep writing → crash again → recover:
        acknowledgements from both lives must survive."""
        ops = make_ops(seed=999)
        with failpoints.active(
            "wal.before_fsync", mode="crash", hits_before=120
        ):
            oracle, inflight, _ = run_workload(tmp_path, ops)
        recovered, _ = DurableTree.recover(tmp_path, QuITTree, CFG)
        got = dict(recovered.tree.items())
        assert any(got == s for s in allowed_states(oracle, inflight))
        # Second life: adopt the recovered state as the new oracle and
        # keep going until a second crash.
        oracle2 = dict(got)
        op = None
        try:
            with failpoints.active(
                "wal.after_append", mode="crash", hits_before=60
            ):
                for op in make_ops(seed=1000, n=300):
                    if op[0] == "c":
                        recovered.checkpoint()
                    elif op[0] == "i":
                        recovered.insert(op[1], op[2])
                    elif op[0] == "d":
                        recovered.delete(op[1])
                    else:
                        recovered.insert_many(op[1])
                    apply_op(oracle2, op)
        except SimulatedCrash:
            pass
        final, report = DurableTree.recover(tmp_path, QuITTree, CFG)
        got2 = dict(final.tree.items())
        assert any(got2 == s for s in allowed_states(oracle2, op))
        assert final.check(check_min_fill=False) == []


class TestCrashAtEveryGroupFailpoint:
    """The same acceptance property under ``fsync="group"``.

    A crash mid-batch — before the fsync, after it, or between the
    fsync and the acks — must never lose an acknowledged write and
    never invent one.  The workload is single-threaded, so at most one
    data record is in flight; the batch carrying it is the only
    ambiguity and the standard two-state oracle still applies.
    """

    @pytest.mark.parametrize("hits_before", [0, 2], ids=["hit0", "hit2"])
    @pytest.mark.parametrize("failpoint", GROUP_FAILPOINTS)
    def test_recovers_to_oracle(self, tmp_path, failpoint, hits_before):
        seed = GROUP_FAILPOINTS.index(failpoint) * 100 + hits_before
        ops = make_ops(seed)
        with failpoints.active(
            failpoint, mode="crash", hits_before=hits_before
        ) as state:
            oracle, inflight, survivor = run_workload(
                tmp_path, ops, fsync="group"
            )
        assert survivor is None and state.fired == 1, (
            f"{failpoint} never fired under fsync='group'"
        )
        recovered, report = DurableTree.recover(tmp_path, QuITTree, CFG)
        got = dict(recovered.tree.items())
        states = allowed_states(oracle, inflight)
        assert any(got == s for s in states), (
            f"group-commit crash at {failpoint}: recovered state is "
            f"neither the acknowledged oracle ({len(oracle)} keys) nor "
            f"oracle+inflight {inflight!r}; got {len(got)} keys "
            f"(missing={len(set(oracle) - set(got))}, "
            f"phantom={len(set(got) - set(states[-1]))})"
        )
        assert recovered.check(check_min_fill=False) == []
        recovered.insert(10**9, "post-recovery")
        assert recovered.get(10**9) == "post-recovery"
        recovered.close()

    def test_group_recovery_reopens_as_group(self, tmp_path):
        """Crash under group commit, recover straight back into
        ``fsync="group"``: the new facade's flusher works and acked
        writes from both lives survive a clean close."""
        ops = make_ops(seed=31337)
        with failpoints.active(
            "wal.group.pre_fsync", mode="crash", hits_before=50
        ):
            oracle, inflight, _ = run_workload(tmp_path, ops, fsync="group")
        recovered, _ = DurableTree.recover(
            tmp_path, QuITTree, CFG, fsync="group"
        )
        got = dict(recovered.tree.items())
        assert any(got == s for s in allowed_states(oracle, inflight))
        oracle2 = dict(got)
        for op in make_ops(seed=31338, n=200):
            if op[0] == "c":
                recovered.checkpoint()
            else:
                if op[0] == "i":
                    recovered.insert(op[1], op[2])
                elif op[0] == "d":
                    recovered.delete(op[1])
                else:
                    recovered.insert_many(op[1])
                apply_op(oracle2, op)
        recovered.close()
        final, report = DurableTree.recover(tmp_path, QuITTree, CFG)
        assert dict(final.tree.items()) == oracle2
        assert final.check(check_min_fill=False) == []


class TestNoCrashControl:
    def test_full_workload_recovers_exactly(self, tmp_path):
        ops = make_ops(seed=424242)
        oracle, inflight, t = run_workload(tmp_path, ops)
        assert inflight is None
        t.close()
        recovered, report = DurableTree.recover(tmp_path, QuITTree, CFG)
        assert report.clean
        assert dict(recovered.tree.items()) == oracle
        assert recovered.check(check_min_fill=False) == []


class TestCorruptedTailProperty:
    def test_corrupt_tail_reports_and_recovers_a_prefix(self, tmp_path):
        """After a crash, additionally corrupt the WAL tail: recovery
        must return a report (not raise) and land on an *exact prefix*
        of the acknowledged history — no phantoms, no reordering."""
        ops = make_ops(seed=7)
        with failpoints.active(
            "wal.before_fsync", mode="crash", hits_before=200
        ):
            oracle, inflight, _ = run_workload(tmp_path, ops)
        segs = segment_paths(tmp_path / WAL_DIRNAME)
        assert segs, "workload must leave WAL segments behind"
        data = bytearray(segs[-1].read_bytes())
        assert data, "last segment unexpectedly empty"
        data[-1] ^= 0xFF
        segs[-1].write_bytes(bytes(data))

        recovered, report = DurableTree.recover(tmp_path, QuITTree, CFG)

        assert not report.clean
        assert report.checksum_failures == 1 or report.truncated_tail
        assert report.tail_bytes_dropped > 0
        # Enumerate every prefix state of the history since the last
        # acknowledged checkpoint cannot be distinguished here; instead
        # build ALL prefix states of the full acknowledged run (+ the
        # in-flight op) and require an exact match with one of them.
        prefixes = []
        state: dict = {}
        prefixes.append(dict(state))
        for op in ops:
            apply_op(state, op)
            prefixes.append(dict(state))
            if state == oracle:
                break
        if inflight is not None:
            apply_op(state, inflight)
            prefixes.append(dict(state))
        got = dict(recovered.tree.items())
        assert any(got == p for p in prefixes), (
            "corrupted-tail recovery produced a state that is not a "
            "prefix of the acknowledged history"
        )
        assert recovered.check(check_min_fill=False) == []
