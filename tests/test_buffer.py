"""Tests for SWARE's sortedness buffer."""

import pytest

from repro.sware.buffer import SortednessBuffer


def make_buffer(capacity=100, page_capacity=10):
    return SortednessBuffer(capacity, page_capacity=page_capacity)


class TestConstruction:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            SortednessBuffer(0)

    def test_rejects_bad_page_capacity(self):
        with pytest.raises(ValueError):
            SortednessBuffer(10, page_capacity=1)


class TestAppendAndGet:
    def test_basic(self):
        buf = make_buffer()
        buf.append(5, "five")
        assert len(buf) == 1
        assert buf.get(5) == (True, "five")
        assert buf.get(6) == (False, None)

    def test_pages_fill_and_roll(self):
        buf = make_buffer(capacity=100, page_capacity=10)
        for k in range(25):
            buf.append(k, k)
        assert buf.page_count == 3

    def test_full_buffer_rejects_append(self):
        buf = make_buffer(capacity=5)
        for k in range(5):
            buf.append(k, k)
        assert buf.is_full
        with pytest.raises(RuntimeError):
            buf.append(99, 99)

    def test_out_of_order_tracked(self):
        buf = make_buffer()
        buf.append(10, 1)
        buf.append(5, 2)   # out of order
        buf.append(20, 3)  # in order again
        assert buf.stats.out_of_order_appends == 1
        assert buf.stats.zonemap_scans == 1

    def test_unsorted_page_still_searchable(self):
        buf = make_buffer(page_capacity=20)
        for k in (10, 5, 30, 1, 22):
            buf.append(k, k * 2)
        for k in (10, 5, 30, 1, 22):
            assert buf.get(k) == (True, k * 2)

    def test_duplicate_latest_wins(self):
        buf = make_buffer(page_capacity=4)
        buf.append(7, "first")
        for k in range(8, 13):
            buf.append(k, k)
        buf.append(7, "second")
        assert buf.get(7) == (True, "second")

    def test_no_false_negatives_across_pages(self):
        buf = make_buffer(capacity=500, page_capacity=16)
        keys = [((k * 37) % 500) for k in range(400)]
        seen = {}
        for k in keys:
            buf.append(k, k)
            seen[k] = k
        for k in seen:
            found, value = buf.get(k)
            assert found and value == k


class TestRangeItems:
    def test_range_collects_matching(self):
        buf = make_buffer()
        for k in (5, 15, 25, 35):
            buf.append(k, k)
        got = sorted(buf.range_items(10, 30))
        assert got == [(15, 15), (25, 25)]

    def test_empty_range(self):
        buf = make_buffer()
        buf.append(5, 5)
        assert buf.range_items(100, 200) == []


class TestRemove:
    def test_remove_existing(self):
        buf = make_buffer()
        buf.append(5, 5)
        buf.append(6, 6)
        assert buf.remove(5)
        assert buf.get(5) == (False, None)
        assert len(buf) == 1

    def test_remove_missing(self):
        buf = make_buffer()
        buf.append(5, 5)
        assert not buf.remove(99)

    def test_append_after_remove_is_findable(self):
        # Exercises the page-filter rebuild after removal.
        buf = make_buffer(capacity=50, page_capacity=50)
        for k in range(10):
            buf.append(k, k)
        buf.remove(3)
        buf.append(100, 100)
        assert buf.get(100) == (True, 100)
        assert buf.get(3) == (False, None)


class TestDrain:
    def test_drain_returns_sorted_unique(self):
        buf = make_buffer()
        for k in (5, 3, 9, 3, 1):
            buf.append(k, f"v{k}")
        buf.append(3, "latest")
        out = buf.drain()
        assert [k for k, _ in out] == [1, 3, 5, 9]
        assert dict(out)[3] == "latest"

    def test_drain_resets_everything(self):
        buf = make_buffer()
        for k in range(20):
            buf.append(k, k)
        buf.drain()
        assert len(buf) == 0
        assert buf.page_count == 0
        assert buf.get(5) == (False, None)
        assert buf.stats.flushes == 1
        # Fresh appends work fine afterwards.
        buf.append(1, 1)
        assert buf.get(1) == (True, 1)

    def test_drain_empty(self):
        buf = make_buffer()
        assert buf.drain() == []


class TestAccounting:
    def test_items_arrival_order(self):
        buf = make_buffer()
        seq = [(5, "a"), (2, "b"), (9, "c")]
        for k, v in seq:
            buf.append(k, v)
        assert list(buf.items()) == seq

    def test_memory_bytes_positive(self):
        buf = make_buffer()
        buf.append(1, 1)
        assert buf.memory_bytes > 0
