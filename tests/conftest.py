"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.testing import failpoints
from repro.core import (
    BPlusTree,
    LilBPlusTree,
    PoleBPlusTree,
    QuITNoResetTree,
    QuITNoVariableSplitTree,
    QuITTree,
    TailBPlusTree,
    TreeConfig,
)

#: Every tree variant, including ablations (ids used in parametrize).
ALL_TREE_CLASSES = [
    BPlusTree,
    TailBPlusTree,
    LilBPlusTree,
    PoleBPlusTree,
    QuITTree,
    QuITNoResetTree,
    QuITNoVariableSplitTree,
]

#: The variants with a fast path.
FASTPATH_TREE_CLASSES = ALL_TREE_CLASSES[1:]


@pytest.fixture(autouse=True)
def _disarm_failpoints():
    """Failpoint arming is process-global; never leak across tests."""
    yield
    failpoints.reset()


@pytest.fixture
def small_config() -> TreeConfig:
    """Tiny nodes: forces deep trees and frequent splits."""
    return TreeConfig(leaf_capacity=8, internal_capacity=8)


@pytest.fixture
def medium_config() -> TreeConfig:
    """The benchmark default."""
    return TreeConfig(leaf_capacity=64, internal_capacity=64)


@pytest.fixture(params=ALL_TREE_CLASSES, ids=lambda c: c.name)
def any_tree_class(request):
    """Parametrizes a test over every tree variant."""
    return request.param


@pytest.fixture(params=FASTPATH_TREE_CLASSES, ids=lambda c: c.name)
def fastpath_tree_class(request):
    """Parametrizes a test over every fast-path variant."""
    return request.param


def shuffled_keys(n: int, seed: int = 0) -> list[int]:
    """Keys 0..n-1 uniformly shuffled."""
    keys = list(range(n))
    random.Random(seed).shuffle(keys)
    return keys


def validate_tree(tree) -> None:
    """Validate with min-fill relaxed (QuIT variants create small
    leaves by design)."""
    tree.validate(check_min_fill=False)
