"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.concurrency import sanitizer
from repro.testing import failpoints, iofaults
from repro.core import (
    BPlusTree,
    LilBPlusTree,
    PoleBPlusTree,
    QuITNoResetTree,
    QuITNoVariableSplitTree,
    QuITTree,
    TailBPlusTree,
    TreeConfig,
)

#: Every tree variant, including ablations (ids used in parametrize).
ALL_TREE_CLASSES = [
    BPlusTree,
    TailBPlusTree,
    LilBPlusTree,
    PoleBPlusTree,
    QuITTree,
    QuITNoResetTree,
    QuITNoVariableSplitTree,
]

#: The variants with a fast path.
FASTPATH_TREE_CLASSES = ALL_TREE_CLASSES[1:]


@pytest.fixture(autouse=True)
def _disarm_failpoints():
    """Failpoint arming is process-global; never leak across tests."""
    yield
    failpoints.reset()


@pytest.fixture(autouse=True)
def _disarm_iofaults():
    """I/O fault arming is process-global; never leak across tests."""
    yield
    iofaults.reset()


@pytest.fixture(autouse=True)
def _lock_sanitizer_clean():
    """Under ``QUIT_SANITIZE=1`` every test doubles as a lock-discipline
    assertion: any violation the sanitizer recorded during the test
    fails it.  (Tests that *seed* violations drain them before
    returning.)  A no-op when the sanitizer is off."""
    if sanitizer.enabled():
        sanitizer.reset()
    yield
    if sanitizer.enabled():
        leftover = sanitizer.take_violations()
        details = "\n".join(
            f"[{v.kind}] {v.message}\n{v.stack}" for v in leftover
        )
        assert not leftover, f"lock sanitizer violations:\n{details}"


@pytest.fixture
def small_config() -> TreeConfig:
    """Tiny nodes: forces deep trees and frequent splits."""
    return TreeConfig(leaf_capacity=8, internal_capacity=8)


@pytest.fixture
def medium_config() -> TreeConfig:
    """The benchmark default."""
    return TreeConfig(leaf_capacity=64, internal_capacity=64)


@pytest.fixture(params=ALL_TREE_CLASSES, ids=lambda c: c.name)
def any_tree_class(request):
    """Parametrizes a test over every tree variant."""
    return request.param


@pytest.fixture(params=FASTPATH_TREE_CLASSES, ids=lambda c: c.name)
def fastpath_tree_class(request):
    """Parametrizes a test over every fast-path variant."""
    return request.param


def shuffled_keys(n: int, seed: int = 0) -> list[int]:
    """Keys 0..n-1 uniformly shuffled."""
    keys = list(range(n))
    random.Random(seed).shuffle(keys)
    return keys


def validate_tree(tree) -> None:
    """Validate with min-fill relaxed (QuIT variants create small
    leaves by design)."""
    tree.validate(check_min_fill=False)
