"""Tests for the benchmark harness and reporting."""

import numpy as np
import pytest

from repro.bench.harness import (
    BenchScale,
    VARIANTS,
    ingest,
    make_tree,
    time_point_lookups,
    time_range_queries,
    timed_ingest,
)
from repro.bench.reporting import ExperimentResult, render, render_all
from repro.sware import SABPlusTree


class TestBenchScale:
    def test_presets(self):
        assert BenchScale.smoke().n < BenchScale.default().n
        assert BenchScale.paper().leaf_capacity == 510

    def test_with_n(self):
        scale = BenchScale.default().with_n(500)
        assert scale.n == 500
        assert scale.leaf_capacity == BenchScale.default().leaf_capacity

    def test_tree_config(self):
        cfg = BenchScale(leaf_capacity=32).tree_config
        assert cfg.leaf_capacity == 32

    def test_sware_buffer_capacity(self):
        assert BenchScale(n=100_000).sware_buffer_capacity == 1000
        assert BenchScale(n=100).sware_buffer_capacity == 64


class TestMakeTree:
    @pytest.mark.parametrize("name", list(VARIANTS))
    def test_known_variants(self, name):
        tree = make_tree(name, BenchScale.smoke())
        assert tree.name == name

    def test_sware(self):
        tree = make_tree("SWARE", BenchScale.smoke())
        assert isinstance(tree, SABPlusTree)

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            make_tree("nonsense", BenchScale.smoke())


class TestTiming:
    def test_ingest_returns_positive_seconds(self):
        tree = make_tree("B+-tree", BenchScale.smoke())
        seconds = ingest(tree, range(500))
        assert seconds > 0
        assert len(tree) == 500

    def test_timed_ingest(self):
        scale = BenchScale.smoke()
        run = timed_ingest("QuIT", scale, np.arange(1000))
        assert run.n == 1000
        assert run.per_op_us > 0
        assert run.ops_per_sec > 0
        assert len(run.tree) == 1000

    def test_timed_ingest_flushes_sware(self):
        run = timed_ingest("SWARE", BenchScale.smoke(), np.arange(500))
        assert len(run.tree.buffer) == 0

    def test_lookup_and_range_timers(self):
        scale = BenchScale.smoke()
        run = timed_ingest("B+-tree", scale, np.arange(2000))
        assert time_point_lookups(run.tree, list(range(100))) > 0
        assert time_range_queries(run.tree, [(0, 50), (100, 200)]) > 0


class TestReporting:
    def _result(self):
        return ExperimentResult(
            exp_id="figX",
            title="demo",
            columns=["k", "value"],
            rows=[{"k": 1, "value": 3.14159}, {"k": 2, "value": 10_000.0}],
            notes=["a note"],
        )

    def test_render_contains_everything(self):
        text = render(self._result())
        assert "figX" in text
        assert "demo" in text
        assert "3.14" in text
        assert "10,000" in text
        assert "note: a note" in text

    def test_render_empty(self):
        empty = ExperimentResult("e", "t", ["a"])
        assert "(no rows)" in render(empty)

    def test_column_accessor(self):
        res = self._result()
        assert res.column("k") == [1, 2]

    def test_row_for(self):
        res = self._result()
        assert res.row_for("k", 2)["value"] == 10_000.0
        with pytest.raises(KeyError):
            res.row_for("k", 99)

    def test_render_all(self):
        text = render_all([self._result(), self._result()])
        assert text.count("figX") == 2
