"""Replication layer: streaming, replicas, acks, fencing, failover."""

from __future__ import annotations

import pytest

from repro.core import DurableTree, QuITTree, TreeConfig
from repro.core.durable import SNAPSHOT_NAME
from repro.core.wal import WALPosition
from repro.replication import (
    AckQuorumError,
    CURSOR_FILENAME,
    EpochRegistry,
    FailoverCoordinator,
    FailoverQuorumError,
    FencedError,
    InProcessTransport,
    Primary,
    Replica,
    ReplicaState,
    ReplicationError,
    StaleEpochError,
    TransportChaos,
    read_epoch,
)
from repro.testing import FailpointError, SimulatedCrash, failpoints

CONFIG = TreeConfig(leaf_capacity=8, internal_capacity=8)


def make_primary(tmp_path, name="node0", **kwargs):
    durable = DurableTree(
        QuITTree(CONFIG), tmp_path / name, fsync="none",
        segment_bytes=2048,
    )
    return Primary(durable, node_id=name, **kwargs)


def make_replica(tmp_path, primary, name="replica0", chaos=None):
    replica = Replica(
        tmp_path / name,
        InProcessTransport(primary, chaos=chaos),
        tree_class=QuITTree,
        config=CONFIG,
        name=name,
    )
    replica.bootstrap()
    return replica


class TestPrimaryStream:
    def test_snapshot_payload_before_any_checkpoint(self, tmp_path):
        primary = make_primary(tmp_path)
        payload = primary.snapshot_payload()
        assert payload.data is None
        assert payload.epoch == 1

    def test_fetch_records_streams_all_op_kinds(self, tmp_path):
        primary = make_primary(tmp_path)
        primary.insert(1, "one")
        primary.delete(1)
        primary.insert_many([(2, "two"), (3, "three")])
        payload = primary.snapshot_payload()
        result = primary.fetch_records(payload.base)
        ops = [r.op for r in result.records]
        # The first record is the tenure's epoch marker.
        assert ops[0] == ("e", 1)
        assert ("i", 1, "one") in ops
        assert ("d", 1) in ops
        assert ("m", [(2, "two"), (3, "three")]) in ops
        assert not result.truncated
        assert result.position == primary.tail_position()
        assert result.lag_bytes == 0

    def test_fetch_below_base_reports_truncated(self, tmp_path):
        primary = make_primary(tmp_path)
        for i in range(50):
            primary.insert(i, i)
        primary.checkpoint()
        stale = WALPosition(0, 0)
        result = primary.fetch_records(stale)
        assert result.truncated

    def test_fetch_at_base_with_empty_wal_jumps_to_tail(self, tmp_path):
        primary = make_primary(tmp_path)
        for i in range(10):
            primary.insert(i, i)
        primary.checkpoint()
        base = primary.snapshot_payload().base
        result = primary.fetch_records(base)
        assert not result.truncated
        assert result.records == []
        assert result.position >= base

    def test_epoch_marker_precedes_data(self, tmp_path):
        primary = make_primary(tmp_path, epoch=7)
        primary.insert(1, 1)
        result = primary.fetch_records(primary.snapshot_payload().base)
        assert result.records[0].op == ("e", 7)
        assert read_epoch(primary.directory) == 7


class TestReplica:
    def test_bootstrap_and_stream_converge(self, tmp_path):
        primary = make_primary(tmp_path)
        for i in range(100):
            primary.insert(i, i * 2)
        primary.checkpoint()  # snapshot half the state
        for i in range(100, 200):
            primary.insert(i, i * 2)
        replica = make_replica(tmp_path, primary)
        replica.catch_up(primary.tail_position())
        assert replica.items() == list(primary.items())
        assert replica.state is ReplicaState.FOLLOWING
        assert replica.lag_bytes == 0

    def test_replica_applies_deletes_and_batches(self, tmp_path):
        primary = make_primary(tmp_path)
        replica = make_replica(tmp_path, primary)
        primary.insert_many([(i, i) for i in range(50)])
        primary.delete(7)
        primary.delete(13)
        replica.catch_up(primary.tail_position())
        assert replica.get(7) is None
        assert replica.get(8) == 8
        assert len(replica) == 48

    def test_duplicate_delivery_is_deduplicated(self, tmp_path):
        primary = make_primary(tmp_path)
        chaos = TransportChaos(duplicate_probability=0.6, seed=3)
        replica = make_replica(tmp_path, primary, chaos=chaos)
        for phase in range(4):
            primary.insert_many(
                [(phase * 30 + i, phase) for i in range(30)]
            )
            replica.catch_up(primary.tail_position(), max_rounds=128)
        assert replica.items() == list(primary.items())
        assert replica.transport.duplicates > 0
        assert replica.duplicates_skipped > 0

    def test_crc_tamper_is_rejected(self, tmp_path):
        class TamperingTransport(InProcessTransport):
            def fetch_records(self, position, **kwargs):
                result = super().fetch_records(position, **kwargs)
                result.records[:] = [
                    r.__class__(
                        position=r.position,
                        next_position=r.next_position,
                        payload=r.payload,
                        crc=r.crc ^ 0xDEAD,
                    )
                    for r in result.records
                ]
                return result

        primary = make_primary(tmp_path)
        replica = Replica(
            tmp_path / "tampered", TamperingTransport(primary),
            tree_class=QuITTree, config=CONFIG, name="tampered",
        )
        replica.bootstrap()
        primary.insert(1, "clean")
        with pytest.raises(ReplicationError, match="CRC"):
            replica.poll()
        assert replica.crc_failures == 1
        assert replica.get(1) is None  # nothing was applied

    def test_replica_is_locally_durable(self, tmp_path):
        primary = make_primary(tmp_path)
        for i in range(80):
            primary.insert(i, str(i))
        primary.checkpoint()
        for i in range(80, 120):
            primary.insert(i, str(i))
        replica = make_replica(tmp_path, primary)
        replica.catch_up(primary.tail_position())
        expected = replica.items()
        replica.close()
        recovered, report = DurableTree.recover(
            replica.directory, QuITTree, CONFIG
        )
        assert list(recovered.items()) == expected
        recovered.close()

    def test_resume_continues_from_cursor(self, tmp_path):
        primary = make_primary(tmp_path)
        replica = make_replica(tmp_path, primary)
        for i in range(40):
            primary.insert(i, i)
        replica.catch_up(primary.tail_position())
        cursor_before = replica.position
        replica.kill()
        for i in range(40, 80):
            primary.insert(i, i)
        replica.resume()
        assert replica.position == cursor_before
        assert (replica.directory / CURSOR_FILENAME).exists()
        replica.catch_up(primary.tail_position())
        assert replica.items() == list(primary.items())

    def test_rebootstrap_after_checkpoint_truncation(self, tmp_path):
        primary = make_primary(tmp_path)
        replica = make_replica(tmp_path, primary)
        replica.catch_up(primary.tail_position())
        # Push the replica's cursor far behind a checkpoint: rotation is
        # forced by tiny segment_bytes, and checkpoint() truncates.
        for i in range(300):
            primary.insert(i, i)
        primary.checkpoint()
        for i in range(300, 320):
            primary.insert(i, i)
        replica.catch_up(primary.tail_position(), max_rounds=32)
        assert replica.bootstraps >= 2  # initial + truncation recovery
        assert replica.items() == list(primary.items())


class TestSyncAcks:
    def test_sync_ack_waits_for_replica(self, tmp_path):
        primary = make_primary(tmp_path, required_acks=1)
        replica = make_replica(tmp_path, primary)
        primary.attach(replica)
        primary.insert(1, "acked")
        # The ack implies the replica already applied it.
        assert replica.get(1) == "acked"

    def test_ack_quorum_failure_raises(self, tmp_path):
        primary = make_primary(tmp_path, required_acks=1)
        replica = make_replica(tmp_path, primary)
        primary.attach(replica)
        replica.kill()
        with pytest.raises(AckQuorumError) as exc_info:
            primary.insert(2, "unacked")
        assert exc_info.value.acks == 0
        assert exc_info.value.required == 1
        # The write is locally durable (it may survive) — it is just
        # not acknowledged.
        assert primary.get(2) == "unacked"

    def test_stale_tenure_replica_does_not_count_as_ack(self, tmp_path):
        primary = make_primary(tmp_path, required_acks=1)
        replica = make_replica(tmp_path, primary)
        # Simulate a cursor from a different tenure with an inflated
        # position: it must not satisfy the quorum via the early-exit.
        replica.epoch = primary.epoch + 5
        replica.position = WALPosition(999, 0)
        replica.kill()
        primary.attach(replica)
        with pytest.raises(AckQuorumError):
            primary.insert(1, 1)


class TestFencing:
    def test_registry_bump_fences_old_primary(self, tmp_path):
        registry = EpochRegistry()
        primary = make_primary(tmp_path, registry=registry)
        primary.insert(1, 1)
        registry.bump()
        with pytest.raises(FencedError):
            primary.insert(2, 2)
        assert primary.fenced
        assert primary.writes_rejected == 1
        # The rejected write never reached the durable tree.
        assert primary.get(2) is None

    def test_partitioned_primary_fails_safe(self, tmp_path):
        registry = EpochRegistry()
        primary = make_primary(tmp_path, registry=registry)
        registry.partition(primary.node_id)
        with pytest.raises(FencedError):
            primary.insert(1, 1)
        registry.heal(primary.node_id)
        primary.insert(1, 1)  # reachable again, still epoch holder

    def test_fence_decree(self, tmp_path):
        primary = make_primary(tmp_path)
        transport = InProcessTransport(primary)
        transport.fence(5)
        with pytest.raises(FencedError):
            primary.insert(1, 1)
        assert primary.fenced_by == 5

    def test_replica_rejects_deposed_primary_stream(self, tmp_path):
        registry = EpochRegistry()
        old = make_primary(tmp_path, name="old", registry=registry)
        replica = make_replica(tmp_path, old)
        old.insert(1, 1)
        replica.catch_up(old.tail_position())
        # A new tenure starts elsewhere; this replica learns of it.
        replica.epoch = registry.bump()
        with pytest.raises(StaleEpochError):
            replica.poll()
        assert replica.stale_epoch_rejects == 1


class TestFailover:
    def build_cluster(self, tmp_path, n_replicas=2, required_acks=0):
        registry = EpochRegistry()
        primary = make_primary(
            tmp_path, registry=registry, required_acks=required_acks
        )
        replicas = [
            make_replica(tmp_path, primary, name=f"replica{i}")
            for i in range(n_replicas)
        ]
        for replica in replicas:
            primary.attach(replica)
        coordinator = FailoverCoordinator(
            primary,
            InProcessTransport(primary),
            replicas,
            registry,
            transport_factory=InProcessTransport,
            failure_threshold=2,
        )
        return registry, primary, replicas, coordinator

    def test_tick_promotes_after_threshold(self, tmp_path):
        registry, primary, replicas, coord = self.build_cluster(tmp_path)
        for i in range(60):
            primary.insert(i, i)
        for replica in replicas:
            replica.catch_up(primary.tail_position())
        primary.kill()
        assert coord.tick() is None  # strike 1
        report = coord.tick()  # strike 2 -> failover
        assert report is not None
        assert report.new_epoch == 2
        assert coord.primary is not primary
        assert coord.primary.epoch == 2
        assert list(coord.primary.items()) == [(i, i) for i in range(60)]
        # Promotion scrubbed the winner (report carries the numbers).
        assert report.scrub_repairs >= 0
        assert coord.primary.node_id == report.new_node

    def test_most_caught_up_replica_wins(self, tmp_path):
        registry, primary, replicas, coord = self.build_cluster(
            tmp_path, n_replicas=2
        )
        for i in range(30):
            primary.insert(i, i)
        replicas[0].catch_up(primary.tail_position())
        # replica1 lags: it never polls.
        primary.kill()
        coord.tick()
        report = coord.tick()
        assert report.new_node == "replica0"

    def test_failover_repoints_remaining_replicas(self, tmp_path):
        registry, primary, replicas, coord = self.build_cluster(tmp_path)
        for i in range(40):
            primary.insert(i, i)
        for replica in replicas:
            replica.catch_up(primary.tail_position())
        primary.kill()
        coord.tick()
        report = coord.tick()
        assert report.rebootstrapped == 1
        survivor = coord.replicas[0]
        coord.primary.insert(1000, "after")
        survivor.catch_up(coord.primary.tail_position())
        assert survivor.get(1000) == "after"
        assert survivor.epoch == coord.primary.epoch

    def test_quorum_refusal(self, tmp_path):
        registry, primary, replicas, coord = self.build_cluster(
            tmp_path, n_replicas=2
        )
        primary.kill()
        for replica in replicas:
            replica.kill()
        coord.tick()
        with pytest.raises(FailoverQuorumError):
            coord.tick()

    def test_old_primary_writes_rejected_after_partition(self, tmp_path):
        """Acceptance: the fenced old primary's post-partition writes
        are provably rejected, during the partition and after it heals."""
        registry, primary, replicas, coord = self.build_cluster(tmp_path)
        primary.insert(1, "before")
        for replica in replicas:
            replica.catch_up(primary.tail_position())
        # Partition the primary from the registry and its replicas.
        registry.partition(primary.node_id)
        coord.primary_transport.partition()
        with pytest.raises(FencedError):
            primary.insert(2, "during-partition")
        coord.tick()
        report = coord.tick()
        assert report is not None
        new_primary = coord.primary
        new_primary.insert(3, "new-tenure")
        # Heal: the old primary is reachable again but deposed.
        registry.heal(primary.node_id)
        with pytest.raises(FencedError):
            primary.insert(4, "after-heal")
        assert primary.fenced
        # Neither rejected write exists anywhere.
        assert primary.get(2) is None and primary.get(4) is None
        assert new_primary.get(2) is None and new_primary.get(4) is None
        assert new_primary.get(3) == "new-tenure"

    def test_status_snapshot(self, tmp_path):
        registry, primary, replicas, coord = self.build_cluster(tmp_path)
        status = coord.status()
        assert status.primary == "node0"
        assert status.epoch == 1
        assert len(status.replicas) == 2
        assert all(r["alive"] for r in status.replicas)


class TestReplicationFailpoints:
    def test_ship_record_failure_breaks_fetch(self, tmp_path):
        primary = make_primary(tmp_path)
        replica = make_replica(tmp_path, primary)
        primary.insert(1, 1)
        with failpoints.active("repl.ship_record", mode="raise"):
            with pytest.raises(FailpointError):
                replica.poll()
        replica.catch_up(primary.tail_position())
        assert replica.get(1) == 1

    def test_snapshot_fetch_failure_breaks_bootstrap(self, tmp_path):
        primary = make_primary(tmp_path)
        replica = Replica(
            tmp_path / "r", InProcessTransport(primary),
            tree_class=QuITTree, config=CONFIG,
        )
        with failpoints.active("repl.snapshot_fetch", mode="raise"):
            with pytest.raises(FailpointError):
                replica.bootstrap()
        replica.bootstrap()
        assert replica.state is ReplicaState.FOLLOWING

    def test_apply_record_crash_is_recoverable(self, tmp_path):
        primary = make_primary(tmp_path)
        replica = make_replica(tmp_path, primary)
        primary.insert(1, 1)
        with failpoints.active("repl.apply_record", mode="crash"):
            with pytest.raises(SimulatedCrash):
                replica.poll()
        # The "crashed" replica restarts from its own disk.
        replica.kill()
        replica.resume()
        replica.catch_up(primary.tail_position())
        assert replica.get(1) == 1

    def test_transport_drop_failpoint(self, tmp_path):
        primary = make_primary(tmp_path)
        replica = make_replica(tmp_path, primary)
        with failpoints.active("repl.transport.drop", mode="raise"):
            with pytest.raises(FailpointError):
                replica.poll()
        assert failpoints.hit_count("repl.transport.drop") == 1

    def test_promote_failpoint_aborts_failover(self, tmp_path):
        registry = EpochRegistry()
        primary = make_primary(tmp_path, registry=registry)
        replica = make_replica(tmp_path, primary)
        coord = FailoverCoordinator(
            primary, InProcessTransport(primary), [replica], registry,
            transport_factory=InProcessTransport, failure_threshold=1,
        )
        primary.kill()
        with failpoints.active("repl.promote", mode="raise"):
            with pytest.raises(FailpointError):
                coord.tick()
