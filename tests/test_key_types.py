"""Non-arithmetic key types: every variant must remain correct (QuIT's
IKR degrades gracefully to 50% splits when keys cannot be extrapolated).
"""

import random

import pytest

from repro.betree import BeTree, BeTreeConfig
from repro.core import QuITTree, TreeConfig

from conftest import validate_tree

CFG = TreeConfig(leaf_capacity=8, internal_capacity=8)


def words(n, seed=0):
    rng = random.Random(seed)
    alphabet = "abcdefghijklmnopqrstuvwxyz"
    out = set()
    while len(out) < n:
        out.add("".join(rng.choice(alphabet) for _ in range(6)))
    return sorted(out)


class TestStringKeys:
    def test_sorted_string_ingest(self, any_tree_class):
        tree = any_tree_class(CFG)
        keys = words(500, seed=1)
        for w in keys:
            tree.insert(w, w.upper())
        validate_tree(tree)
        assert list(tree.keys()) == keys
        assert tree.get(keys[123]) == keys[123].upper()

    def test_shuffled_string_ingest(self, any_tree_class):
        tree = any_tree_class(CFG)
        keys = words(500, seed=2)
        shuffled = list(keys)
        random.Random(3).shuffle(shuffled)
        for w in shuffled:
            tree.insert(w, None)
        validate_tree(tree)
        assert list(tree.keys()) == keys

    def test_string_range_query(self, any_tree_class):
        tree = any_tree_class(CFG)
        for w in words(300, seed=4):
            tree.insert(w, w)
        got = tree.range_query("d", "g")
        assert all("d" <= k < "g" for k, _ in got)
        assert got == sorted(got)

    def test_string_deletes(self, any_tree_class):
        tree = any_tree_class(CFG)
        keys = words(300, seed=5)
        for w in keys:
            tree.insert(w, w)
        for w in keys[:150]:
            assert tree.delete(w)
        validate_tree(tree)
        assert list(tree.keys()) == keys[150:]

    def test_quit_sorted_strings_keep_fast_path(self):
        # Even without IKR, the pole follows sorted appends.
        tree = QuITTree(CFG)
        for w in words(1000, seed=6):
            tree.insert(w, None)
        assert tree.stats.fast_insert_fraction > 0.95
        validate_tree(tree)


class TestTupleKeys:
    def test_composite_tuples(self, any_tree_class):
        tree = any_tree_class(CFG)
        keys = [(i // 10, i % 10) for i in range(400)]
        shuffled = list(keys)
        random.Random(7).shuffle(shuffled)
        for k in shuffled:
            tree.insert(k, sum(k))
        validate_tree(tree)
        assert list(tree.keys()) == keys
        assert tree.get((7, 3)) == 10

    def test_tuple_range(self, any_tree_class):
        tree = any_tree_class(CFG)
        for i in range(200):
            tree.insert((i, 0), i)
        got = tree.range_query((50, 0), (60, 0))
        assert [k for k, _ in got] == [(i, 0) for i in range(50, 60)]


class TestBeTreeKeyTypes:
    def test_string_keys(self):
        t = BeTree(BeTreeConfig(leaf_capacity=8, fanout=4,
                                buffer_capacity=12))
        keys = words(400, seed=8)
        shuffled = list(keys)
        random.Random(9).shuffle(shuffled)
        for w in shuffled:
            t.insert(w, w)
        t.validate()
        assert [k for k, _ in t.items()] == keys
        assert t.range_query("a", "c") == [
            (k, k) for k in keys if "a" <= k < "c"
        ]


class TestFloatKeys:
    def test_float_keys_everywhere(self, any_tree_class):
        tree = any_tree_class(CFG)
        keys = [i * 0.5 for i in range(500)]
        shuffled = list(keys)
        random.Random(10).shuffle(shuffled)
        for k in shuffled:
            tree.insert(k, k)
        validate_tree(tree)
        assert list(tree.keys()) == keys

    def test_quit_ikr_works_on_floats(self):
        tree = QuITTree(TreeConfig(leaf_capacity=64, internal_capacity=64))
        for i in range(5000):
            tree.insert(i * 0.25, None)
        # IKR handles float domains: variable splits still happen.
        assert tree.stats.variable_splits > 0
        assert tree.occupancy().avg_occupancy > 0.9
