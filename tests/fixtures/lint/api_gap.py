"""Fixture: a tree facade missing part of the batched surface.
Seeded violation for the ``api-parity`` rule; never imported."""


class PartialTree:
    def insert(self, key, value=None):
        raise NotImplementedError

    def get(self, key, default=None):
        raise NotImplementedError

    def get_many(self, keys, default=None):
        raise NotImplementedError

    def range_query(self, start, end):
        raise NotImplementedError
