"""Fixture: two unranked locks nested in both orders (deadlock recipe),
plus a nested reacquisition of the same lock.  Seeded violations for the
``lock-discipline`` rule; never imported by the package."""

import threading


class Pair:
    def __init__(self):
        self._alpha_lock = threading.Lock()
        self._beta_lock = threading.Lock()

    def forward(self):
        with self._alpha_lock:
            with self._beta_lock:  # edge alpha -> beta
                pass

    def backward(self):
        with self._beta_lock:
            with self._alpha_lock:  # edge beta -> alpha: cycle!
                pass

    def reentrant(self):
        with self._alpha_lock:
            with self._alpha_lock:  # self-nesting: not reentrant
                pass
