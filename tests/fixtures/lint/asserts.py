"""Fixture: bare assert (vanishes under ``python -O``).  Seeded
violation for the ``no-bare-assert`` rule; never imported."""


def clamp(x):
    assert x >= 0, "negative input"
    return min(x, 10)
