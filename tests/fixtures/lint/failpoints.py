"""Fixture: failpoint registry with a never-fired entry.  Paired with
``caller.py``; seeded violations for ``failpoint-parity``.  Never
imported."""

KNOWN_FAILPOINTS = (
    "io.write",
    "io.never_fired",
)
