"""Fixture: write to an undeclared stats field (a counter typo).
Seeded violation for the ``stats-parity`` rule; never imported."""

from dataclasses import dataclass


@dataclass
class WidgetStats:
    appends: int = 0


class Widget:
    def __init__(self):
        self.stats = WidgetStats()

    def record(self):
        self.stats.appends += 1  # declared: fine
        self.stats.appendz += 1  # typo: mints a dead counter

    def record_via_alias(self):
        stats = self.stats
        stats.appned = 1  # typo through a local alias
