"""Fixture: rank inversion against the canonical LOCK_ORDER.

The file is *named* ``durable.py`` so ``self._gate`` resolves to the
canonical ``durable.gate`` lock id, and the ``# holds:`` pragma claims
the innermost ``wal.append`` is already held — acquiring the coarse
gate under it contradicts the canonical order.  Seeded violation for
the ``lock-discipline`` rule; never imported by the package."""


class Broken:
    def flush_under_wal(self):  # holds: wal.append
        with self._gate.read_locked():  # durable.gate under wal.append
            pass
