"""Fixture: fire sites that drift from the registry in ``failpoints.py``
(same directory).  Seeded violations for ``failpoint-parity``.  Never
imported."""

from . import failpoints  # noqa: F401  (fixture only; never executed)


def do_write(name):
    failpoints.fire("io.write")  # registered: fine
    failpoints.fire("io.unregistered")  # not in KNOWN_FAILPOINTS
    failpoints.fire(name)  # non-literal: invisible to coverage
