"""Seeded exception-flow violations: a raw OSError escaping a wire
handler from two frames down, a machinery catch-all that swallows, and
a typed refusal wrapped into a retryable errno — plus a clean handler
that catches and maps, which must stay silent."""

ST_OK = 0
ST_INTERNAL = 5


class ReadOnlyError(RuntimeError):
    pass


class TransientNetworkError(OSError):
    pass


def _flush():
    raise OSError("disk burp")  # line 19: seeded — must be typed first


def _persist():
    _flush()


def handler_leak(payload):
    value = _persist()
    return ST_OK, 0, value


def handler_swallow(payload):
    try:
        return ST_OK, 0, payload
    except BaseException:  # line 34: seeded — swallows SimulatedCrash
        return ST_INTERNAL, 0, "oops"


def wrap_refusal(fn):
    try:
        return fn()
    except ReadOnlyError as exc:
        raise TransientNetworkError(str(exc))  # line 42: seeded


def handler_clean(payload):
    try:
        value = _persist()
    except OSError as exc:
        return ST_INTERNAL, 0, str(exc)
    return ST_OK, 0, value
