"""Fixture: unguarded write to a lock-protected counter.

The class is *named* ``WriteAheadLog`` so the ``lock-discipline``
rule's guarded-field table applies; ``syncs`` must only be written
under ``wal.append``.  Seeded violation; never imported by the
package."""


class WriteAheadLog:
    def bump(self):
        self.syncs += 1  # guarded field written with no lock held
