"""Fixture: a tree facade that never reports its leaf layout.
Seeded violation for the ``layout-parity`` rule; never imported."""


class LayoutlessTree:
    def insert(self, key, value=None):
        raise NotImplementedError

    def get(self, key, default=None):
        raise NotImplementedError

    def range_query(self, start, end):
        raise NotImplementedError


class LabelledTree:
    @property
    def layout(self):
        return "gapped"

    def get(self, key, default=None):
        raise NotImplementedError

    def range_query(self, start, end):
        raise NotImplementedError


class InheritsLabel(LabelledTree):
    def insert(self, key, value=None):
        raise NotImplementedError
