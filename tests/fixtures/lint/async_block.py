"""Seeded async-blocking violations: a blocking call two frames below
an async handler and a sync lock held in an async body — plus executor-
and pragma-cleared variants that must stay silent."""

import asyncio
import os
import time

_table_lock = None  # stands in for a threading.Lock


def _sync_flush(fd):
    os.fsync(fd)  # line 13: seeded — two frames below the async def


def _middle(fd):
    _sync_flush(fd)


async def handler(fd):
    _middle(fd)


async def cleared_by_executor(fd):
    loop = asyncio.get_running_loop()
    await loop.run_in_executor(None, _sync_flush, fd)


async def cleared_by_pragma():
    time.sleep(0)  # loop-safe: zero-duration sleep as a scheduler hint


async def loop_safe_function(fd):  # loop-safe: audited, runs pre-loop only
    _middle(fd)


async def lock_holder():
    with _table_lock:  # line 38: seeded — sync lock on the loop thread
        return 1
