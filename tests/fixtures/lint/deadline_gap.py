"""Seeded deadline-discipline violations: executor bridges to
wait-shaped calls without a budget, plus a bounded one that is fine."""

import asyncio


class Server:
    async def bad_wait(self, ticket):
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, ticket.wait)  # line 10: seeded

    async def bad_drain(self, backend):
        await asyncio.to_thread(backend.drain_acks)  # line 13: seeded

    async def good_wait(self, ticket, deadline):
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, ticket.wait, deadline)
