"""Background scrub: paced CRC verification, quarantine, and the two
repair paths (local checkpoint / replica peer heal).

The end-to-end bit-rot-under-traffic story is the io-fault chaos soak
(tests/test_iofault_chaos.py); this file exercises the scrubber's
mechanics deterministically.
"""

import time
from pathlib import Path

import pytest

from repro.core import BPlusTree, DurableTree, HealthState, Scrubber
from repro.core.scrubber import QUARANTINE_DIRNAME, verify_artifacts
from repro.core.wal import segment_paths
from repro.core.durable import WAL_DIRNAME
from repro.replication import InProcessTransport, Primary, Replica


def make_tree(directory, n=120, segment_bytes=256):
    tree = DurableTree(
        BPlusTree(), directory, fsync="none", segment_bytes=segment_bytes
    )
    for i in range(n):
        tree.insert(i, i)
    return tree


def rot_segment(directory, index=None):
    """Flip one byte mid-record in a closed segment; returns the path."""
    segments = segment_paths(directory / WAL_DIRNAME)
    closed = segments[:-1]
    target = closed[len(closed) // 2 if index is None else index]
    data = bytearray(target.read_bytes())
    data[len(data) // 2] ^= 0xFF
    target.write_bytes(bytes(data))
    return target


class TestScrubCycle:
    def test_clean_cycle_on_intact_tree(self, tmp_path):
        tree = make_tree(tmp_path)
        scrubber = Scrubber(tree)
        report = scrubber.scrub_once()
        assert report.clean
        assert report.segments_checked > 0
        assert report.bytes_checked > 0
        assert report.snapshot_checked  # first cycle starts a pass
        assert scrubber.cycles == 1
        assert scrubber.corruptions == 0
        tree.close()

    def test_pacing_budget_spreads_a_pass_over_cycles(self, tmp_path):
        tree = make_tree(tmp_path, n=200)
        closed = len(segment_paths(tree.wal.directory)) - 1
        scrubber = Scrubber(tree, max_bytes_per_cycle=300)
        first = scrubber.scrub_once()
        assert 0 < first.segments_checked < closed
        # Cursor advances; within enough cycles the pass covers every
        # closed segment and wraps to the start (checking the snapshot
        # again at the wrap).
        for _ in range(closed * 2):
            scrubber.scrub_once()
        assert scrubber.segments_checked >= closed
        tree.close()

    def test_full_scrub_ignores_budget_and_cursor(self, tmp_path):
        tree = make_tree(tmp_path, n=200)
        closed = len(segment_paths(tree.wal.directory)) - 1
        scrubber = Scrubber(tree, max_bytes_per_cycle=1)
        report = scrubber.scrub_once(full=True)
        assert report.segments_checked == closed
        assert report.snapshot_checked
        tree.close()

    def test_detect_quarantine_and_checkpoint_repair(self, tmp_path):
        tree = make_tree(tmp_path)
        expected = dict(tree.items())
        target = rot_segment(tmp_path)
        scrubber = Scrubber(tree)
        report = scrubber.scrub_once(full=True)
        assert not report.clean
        assert any(target.name in issue for issue in report.issues)
        # Evidence first: a copy of the rotted bytes, original untouched
        # until the repair rewrote the log.
        assert len(report.quarantined) == 1
        copy = Path(report.quarantined[0])
        assert copy.parent == tmp_path / QUARANTINE_DIRNAME
        assert report.repaired and not report.peer_repaired
        assert scrubber.corruptions == 1
        assert scrubber.quarantines == 1
        assert scrubber.repairs == 1
        # The repair checkpointed the live tree: next cycle is clean and
        # a cold recovery serves everything.
        assert scrubber.scrub_once(full=True).clean
        tree.close()
        recovered, recovery = DurableTree.recover(tmp_path, BPlusTree)
        assert recovery.clean
        assert dict(recovered.items()) == expected
        recovered.close()
        assert copy.exists()  # evidence survives the repair

    def test_repair_restores_degraded_health(self, tmp_path):
        tree = make_tree(tmp_path)
        tree.health.mark_read_only(OSError(5, "injected"))
        rot_segment(tmp_path)
        Scrubber(tree).scrub_once(full=True)
        assert tree.health.state is HealthState.HEALTHY
        tree.insert(999, 999)  # writable again
        tree.close()

    def test_auto_repair_off_only_detects_and_quarantines(self, tmp_path):
        tree = make_tree(tmp_path)
        rot_segment(tmp_path)
        scrubber = Scrubber(tree, auto_repair=False)
        report = scrubber.scrub_once(full=True)
        assert not report.clean
        assert report.quarantined
        assert not report.repaired
        assert scrubber.repairs == 0
        # Damage persists: the next full cycle sees it again.
        assert not scrubber.scrub_once(full=True).clean
        tree.close()

    def test_paced_cycle_misses_damage_behind_cursor_full_finds_it(
        self, tmp_path
    ):
        """The operator story behind ``full=True``: a paced pass scans
        forward from its cursor, so fresh damage behind it waits for
        the wrap — a full scrub finds it now."""
        tree = make_tree(tmp_path, n=200)
        scrubber = Scrubber(tree, max_bytes_per_cycle=300,
                            auto_repair=False)
        while True:  # advance the cursor past the middle
            scrubber.scrub_once()
            closed = segment_paths(tree.wal.directory)[:-1]
            if scrubber._cursor_seq > len(closed) // 2 + 1:
                break
        rot_segment(tmp_path, index=0)  # damage behind the cursor
        assert scrubber.scrub_once().clean  # paced pass: not yet seen
        assert not scrubber.scrub_once(full=True).clean
        tree.close()

    def test_corrupt_snapshot_detected(self, tmp_path):
        tree = make_tree(tmp_path)
        tree.checkpoint()
        tree.insert(500, 500)  # keep a WAL alive beside the snapshot
        snap = tree.snapshot_path
        data = bytearray(snap.read_bytes())
        data[len(data) // 2] ^= 0xFF
        snap.write_bytes(bytes(data))
        report = Scrubber(tree, auto_repair=False).scrub_once(full=True)
        assert not report.clean
        assert snap in report.corrupt_paths
        tree.close()

    def test_peer_heal_hook_preferred_over_checkpoint(self, tmp_path):
        tree = make_tree(tmp_path)
        rot_segment(tmp_path)
        healed = []
        scrubber = Scrubber(
            tree, peer_heal=lambda: healed.append(1) or True
        )
        report = scrubber.scrub_once(full=True)
        assert healed == [1]
        assert report.peer_repaired and not report.repaired
        assert scrubber.peer_repairs == 1 and scrubber.repairs == 0
        tree.close()

    def test_failing_peer_heal_falls_back_to_checkpoint(self, tmp_path):
        tree = make_tree(tmp_path)
        rot_segment(tmp_path)

        def broken_peer():
            raise RuntimeError("peer unreachable")

        scrubber = Scrubber(tree, peer_heal=broken_peer)
        report = scrubber.scrub_once(full=True)
        assert not report.peer_repaired and report.repaired
        assert isinstance(scrubber.last_error, RuntimeError)
        assert scrubber.scrub_once(full=True).clean
        tree.close()

    def test_scrub_counters_mirrored_into_stats(self, tmp_path):
        tree = make_tree(tmp_path)
        rot_segment(tmp_path)
        Scrubber(tree).scrub_once(full=True)
        stats = tree.stats
        assert stats.scrub_cycles == 1
        assert stats.scrub_corruptions == 1
        assert stats.scrub_quarantines == 1


class TestBackgroundThread:
    def test_context_manager_paces_cycles(self, tmp_path):
        tree = make_tree(tmp_path)
        with Scrubber(tree, interval=0.005) as scrubber:
            deadline = time.monotonic() + 5.0
            while scrubber.cycles < 3 and time.monotonic() < deadline:
                time.sleep(0.005)
        assert scrubber.cycles >= 3
        assert scrubber.last_report is not None
        cycles_after_stop = scrubber.cycles
        time.sleep(0.05)
        assert scrubber.cycles == cycles_after_stop
        tree.close()

    def test_background_repair_under_live_writes(self, tmp_path):
        tree = make_tree(tmp_path)
        rot_segment(tmp_path)
        with Scrubber(tree, interval=0.005) as scrubber:
            deadline = time.monotonic() + 5.0
            i = 1000
            while scrubber.repairs < 1 and time.monotonic() < deadline:
                tree.insert(i, i)
                i += 1
                time.sleep(0.001)
        assert scrubber.repairs >= 1
        assert scrubber.scrub_once(full=True).clean
        tree.close()


class TestReplicaPeerHeal:
    def _pair(self, tmp_path):
        durable = DurableTree(
            BPlusTree(), tmp_path / "primary", fsync="none",
            segment_bytes=256,
        )
        primary = Primary(durable, node_id="p")
        replica = Replica(
            tmp_path / "replica",
            InProcessTransport(primary),
            segment_bytes=256,
            name="r0",
        )
        replica.bootstrap()
        primary.attach(replica)
        for i in range(150):
            primary.insert(i, i)
        replica.catch_up()
        return primary, replica

    def test_bitrot_replica_heals_from_primary(self, tmp_path):
        primary, replica = self._pair(tmp_path)
        target = rot_segment(tmp_path / "replica")
        scrubber = replica.make_scrubber(auto_repair=False)
        report = scrubber.scrub_once(full=True)
        assert any(target.name in issue for issue in report.issues)
        assert report.peer_repaired
        assert replica.peer_heals == 1
        # Byte-level convergence after the rebuild.
        assert scrubber.scrub_once(full=True).clean
        assert dict(replica.durable.items()) == dict(primary.items())
        primary.close()
        replica.close()

    def test_quarantine_evidence_survives_the_rebuild(self, tmp_path):
        primary, replica = self._pair(tmp_path)
        rot_segment(tmp_path / "replica")
        scrubber = replica.make_scrubber(auto_repair=False)
        report = scrubber.scrub_once(full=True)
        assert report.peer_repaired
        copies = list((tmp_path / "replica" / QUARANTINE_DIRNAME).iterdir())
        assert len(copies) == 1  # the wipe spares quarantine/
        primary.close()
        replica.close()


class TestVerifyArtifacts:
    def test_intact_directory_has_no_issues(self, tmp_path):
        tree = make_tree(tmp_path)
        tree.checkpoint()
        tree.insert(500, 500)
        tree.close()
        results = verify_artifacts(tmp_path)
        assert results  # snapshot + at least one segment
        assert all(issues == [] for issues in results.values())

    def test_rotted_segment_reported(self, tmp_path):
        tree = make_tree(tmp_path)
        tree.close()
        target = rot_segment(tmp_path)
        issues = verify_artifacts(tmp_path)[str(target)]
        # Depending on whether the flip landed in a header or a payload
        # the parse reports a torn record or a checksum failure; either
        # way it is damage, not a note.
        assert issues
        assert not any(issue.startswith("note:") for issue in issues)

    def test_final_segment_torn_tail_is_a_note(self, tmp_path):
        tree = make_tree(tmp_path)
        tree.close()
        last = segment_paths(tmp_path / WAL_DIRNAME)[-1]
        data = last.read_bytes()
        last.write_bytes(data[: len(data) - 3])
        issues = verify_artifacts(tmp_path)[str(last)]
        assert issues and issues[0].startswith("note:")

    def test_sequence_gap_reported(self, tmp_path):
        tree = make_tree(tmp_path)
        tree.close()
        segments = segment_paths(tmp_path / WAL_DIRNAME)
        assert len(segments) >= 3
        segments[1].unlink()
        results = verify_artifacts(tmp_path)
        assert any(
            "sequence gap" in issue
            for issues in results.values()
            for issue in issues
        )
