"""Injectable disk faults: the shim itself, and the survivability
property it exists to prove.

The property (mirrors ISSUE acceptance): for **every** registered
``io.*`` site crossed with **every** fault kind, a DurableTree must
either recover transparently (retry/backoff), degrade to read-only but
keep serving reads, or quarantine-and-repair — and in all cases it must
never lose an acknowledged write and never leak a raw ``OSError``.
"""

from pathlib import Path

import pytest

from repro.core import BPlusTree, DurableTree, HealthState, ReadOnlyError
from repro.core.persist import PersistenceError
from repro.core.wal import WALError
from repro.testing import iofaults
from repro.testing.iofaults import IOFaultConfigError

#: Sites that fire on the write path (live appends / checkpoint) vs.
#: the read path (recovery / verification).
WRITE_SITES = (
    "io.wal.write",
    "io.wal.fsync",
    "io.snapshot.write",
    "io.snapshot.fsync",
    "io.snapshot.replace",
)
READ_SITES = ("io.wal.read", "io.snapshot.read")


class TestShim:
    def test_unknown_site_rejected(self):
        with pytest.raises(IOFaultConfigError):
            iofaults.arm("io.nope", "eio")

    def test_unknown_kind_rejected(self):
        with pytest.raises(IOFaultConfigError):
            iofaults.arm("io.wal.write", "gremlins")

    def test_site_split_covers_the_registry(self):
        assert sorted(WRITE_SITES + READ_SITES) == sorted(
            iofaults.KNOWN_IO_SITES
        )

    def test_passthrough_when_disarmed(self, tmp_path):
        path = tmp_path / "f"
        with open(path, "wb") as fh:
            assert iofaults.write("io.wal.write", fh, b"hello") == 5
            iofaults.fsync("io.wal.fsync", fh)
        assert iofaults.read_bytes("io.wal.read", path) == b"hello"
        assert iofaults.injected_total() == 0

    def test_eio_raises_and_counts(self, tmp_path):
        path = tmp_path / "f"
        path.write_bytes(b"x")
        with iofaults.inject("io.wal.read", "eio"):
            with pytest.raises(OSError):
                iofaults.read_bytes("io.wal.read", path)
        assert iofaults.injected_counts() == {("io.wal.read", "eio"): 1}
        # Context manager disarmed on exit.
        assert iofaults.read_bytes("io.wal.read", path) == b"x"

    def test_torn_write_persists_a_prefix_then_raises(self, tmp_path):
        path = tmp_path / "f"
        with iofaults.inject("io.wal.write", "torn"):
            with open(path, "wb") as fh:
                with pytest.raises(OSError):
                    iofaults.write("io.wal.write", fh, b"0123456789")
        data = path.read_bytes()
        assert 0 < len(data) < 10  # a prefix hit the disk

    def test_bitrot_write_succeeds_with_a_flipped_byte(self, tmp_path):
        path = tmp_path / "f"
        payload = b"0123456789"
        with iofaults.inject("io.wal.write", "bitrot"):
            with open(path, "wb") as fh:
                assert iofaults.write("io.wal.write", fh, payload) == 10
        data = path.read_bytes()
        assert len(data) == 10 and data != payload
        assert sum(a != b for a, b in zip(data, payload)) == 1

    def test_bitrot_fsync_rots_the_synced_file(self, tmp_path):
        path = tmp_path / "f"
        with open(path, "wb") as fh:
            fh.write(b"0123456789")
            fh.flush()
            with iofaults.inject("io.wal.fsync", "bitrot"):
                iofaults.fsync("io.wal.fsync", fh)
        assert path.read_bytes() != b"0123456789"

    def test_failed_replace_leaves_src_in_place(self, tmp_path):
        src, dst = tmp_path / "src", tmp_path / "dst"
        src.write_bytes(b"payload")
        with iofaults.inject("io.snapshot.replace", "enospc"):
            with pytest.raises(OSError):
                iofaults.replace("io.snapshot.replace", src, dst)
        assert src.exists() and not dst.exists()

    def test_torn_read_returns_a_prefix(self, tmp_path):
        path = tmp_path / "f"
        path.write_bytes(b"0123456789")
        with iofaults.inject("io.wal.read", "torn"):
            assert iofaults.read_bytes("io.wal.read", path) == b"01234"

    def test_hits_before_and_times_discipline(self, tmp_path):
        path = tmp_path / "f"
        path.write_bytes(b"x")
        iofaults.arm("io.wal.read", "eio", hits_before=2, times=1)
        assert iofaults.read_bytes("io.wal.read", path) == b"x"
        assert iofaults.read_bytes("io.wal.read", path) == b"x"
        with pytest.raises(OSError):
            iofaults.read_bytes("io.wal.read", path)
        assert iofaults.read_bytes("io.wal.read", path) == b"x"
        assert iofaults.injected_total() == 1

    def test_probability_is_seeded_and_reproducible(self, tmp_path):
        path = tmp_path / "f"
        path.write_bytes(b"x")

        def run():
            iofaults.reset()
            iofaults.arm("io.wal.read", "eio", probability=0.5, seed=99)
            outcomes = []
            for _ in range(20):
                try:
                    iofaults.read_bytes("io.wal.read", path)
                    outcomes.append(False)
                except OSError:
                    outcomes.append(True)
            return outcomes

        first, second = run(), run()
        assert first == second
        assert any(first) and not all(first)

    def test_armed_and_reset(self):
        iofaults.arm("io.wal.write", "eio")
        iofaults.arm("io.wal.fsync", "torn")
        assert iofaults.armed() == {
            "io.wal.write": "eio", "io.wal.fsync": "torn",
        }
        iofaults.reset()
        assert iofaults.armed() == {}
        assert iofaults.injected_total() == 0


def make_tree(directory):
    return DurableTree(
        BPlusTree(), directory, fsync="always", segment_bytes=512
    )


class TestSurvivabilityProperty:
    """Every site x every kind: never a raw OSError, never a lost ack."""

    @pytest.mark.parametrize("kind", iofaults.KNOWN_KINDS)
    @pytest.mark.parametrize("site", WRITE_SITES)
    def test_write_site_bounded_fault_heals(self, tmp_path, site, kind):
        """A bounded burst mid-traffic: operate through it, heal with a
        checkpoint, and recovery must serve every acknowledged write."""
        acked = {}
        tree = make_tree(tmp_path)
        for i in range(30):
            tree.insert(i, i)
            acked[i] = i
        iofaults.arm(site, kind, times=3)
        try:
            for i in range(30, 60):
                try:
                    tree.insert(i, i)
                except ReadOnlyError:
                    break
                acked[i] = i
            try:
                tree.checkpoint()
            except ReadOnlyError:
                pass
        finally:
            iofaults.disarm(site)
        # Reads always serve the acked history, whatever the health.
        for key, value in acked.items():
            assert tree.get(key) == value
        # Disk back: one clean checkpoint restores full health and
        # rewrites clean state (also healing any silent bitrot — the
        # live tree holds every acked op the rotted bytes did).
        tree.checkpoint()
        assert tree.health.state is HealthState.HEALTHY
        for i in range(60, 70):
            tree.insert(i, i)
            acked[i] = i
        tree.close()
        recovered, report = DurableTree.recover(tmp_path, BPlusTree)
        assert dict(recovered.items()) == acked
        recovered.close()

    @pytest.mark.parametrize("site", ("io.wal.write", "io.wal.fsync"))
    def test_unbounded_transient_degrades_to_read_only(
        self, tmp_path, site
    ):
        """When the disk never comes back, the tree must stop taking
        writes (fast, with ReadOnlyError) while reads keep serving."""
        tree = make_tree(tmp_path)
        for i in range(20):
            tree.insert(i, i)
        iofaults.arm(site, "eio")
        try:
            with pytest.raises(ReadOnlyError):
                for i in range(20, 40):
                    tree.insert(i, i)
            assert tree.health.state is HealthState.READ_ONLY
            # Degraded serving: reads and ranges still answer.
            assert tree.get(7) == 7
            assert len(tree.range_query(0, 100)) == 20
            # Mutations are refused up front, not after a retry storm.
            with pytest.raises(ReadOnlyError):
                tree.delete(3)
            with pytest.raises(ReadOnlyError):
                tree.insert_many([(91, 1)])
        finally:
            iofaults.disarm(site)
        # Operator freed the disk: a checkpoint restores writability.
        tree.checkpoint()
        assert tree.health.state is HealthState.HEALTHY
        assert tree.health.recoveries >= 1
        tree.insert(99, 99)
        tree.close()
        recovered, _ = DurableTree.recover(tmp_path, BPlusTree)
        assert recovered.get(99) == 99
        assert recovered.get(7) == 7
        recovered.close()

    def test_read_only_fails_group_tickets_fast(self, tmp_path):
        tree = DurableTree(
            BPlusTree(), tmp_path, fsync="group", segment_bytes=512
        )
        tree.insert(1, 1)
        iofaults.arm("io.wal.fsync", "enospc")
        try:
            tickets = [tree.submit_insert(10 + i, i) for i in range(5)]
            failures = 0
            for ticket in tickets:
                try:
                    ticket.wait(10)
                except ReadOnlyError:
                    failures += 1
            assert failures == len(tickets)
            assert tree.health.state is HealthState.READ_ONLY
            with pytest.raises(ReadOnlyError):
                tree.submit_insert(99, 99)
        finally:
            iofaults.disarm("io.wal.fsync")
        tree.checkpoint()
        tree.submit_insert(99, 99).wait(10)
        tree.close()

    @pytest.mark.parametrize("kind", iofaults.KNOWN_KINDS)
    @pytest.mark.parametrize("site", READ_SITES)
    def test_read_site_faults_never_leak_oserror(
        self, tmp_path, site, kind
    ):
        """Recovery under read faults: a bounded fault is retried or
        re-read into truth; persistent damage surfaces as a domain
        error (or a clean degraded recovery) — never a raw OSError."""
        acked = {}
        tree = make_tree(tmp_path)
        for i in range(30):
            tree.insert(i, i)
            acked[i] = i
        tree.checkpoint()  # snapshot exists, so both read sites fire
        for i in range(30, 45):
            tree.insert(i, i)
            acked[i] = i
        tree.close()
        iofaults.arm(site, kind, times=2)
        try:
            try:
                recovered, report = DurableTree.recover(
                    tmp_path, BPlusTree
                )
            except (PersistenceError, WALError):
                # Persistent-looking damage was reported, not crashed
                # on; the artifacts are still on disk.
                pass
            else:
                # Transient noise was absorbed (retry/re-read) — the
                # recovered tree must serve every acked write.
                assert dict(recovered.items()) == acked
                recovered.close()
        finally:
            iofaults.disarm(site)
        # The medium itself was never damaged: a clean recovery now
        # serves everything.
        recovered, report = DurableTree.recover(tmp_path, BPlusTree)
        assert report.clean
        assert dict(recovered.items()) == acked
        recovered.close()

    def test_stats_mirror_health_counters(self, tmp_path):
        tree = make_tree(tmp_path)
        iofaults.arm("io.wal.write", "eio", times=2)
        try:
            tree.insert(1, 1)
        finally:
            iofaults.disarm("io.wal.write")
        stats = tree.stats
        assert stats.health_retries >= 1
        assert stats.health_degradations >= 1
        tree.close()
