"""quit-check rule tests: each rule must fire on its seeded-violation
fixture at the right location, and the shipped ``src/`` tree must lint
clean (the acceptance gate CI enforces)."""

import json
from pathlib import Path

import pytest

from repro.lint.cli import main as cli_main
from repro.lint.engine import Project, all_rules, run_rules

FIXTURES = Path(__file__).parent / "fixtures" / "lint"
SRC = Path(__file__).parent.parent / "src"


def run(rule, *names):
    project = Project.from_paths([FIXTURES / n for n in names])
    return run_rules(project, [rule])


def lines(findings):
    return [f.line for f in findings]


# ---------------------------------------------------------------------------
# no-bare-assert
# ---------------------------------------------------------------------------


def test_bare_assert_fires_with_location():
    findings = run("no-bare-assert", "asserts.py")
    assert len(findings) == 1
    (f,) = findings
    assert f.rule == "no-bare-assert"
    assert f.path.endswith("asserts.py")
    assert f.line == 6  # the `assert x >= 0` line
    assert "python -O" in f.message


# ---------------------------------------------------------------------------
# lock-discipline
# ---------------------------------------------------------------------------


def test_lock_cycle_detected():
    findings = run("lock-discipline", "lock_cycle.py")
    cycles = [f for f in findings if "lock cycle" in f.message]
    assert cycles, findings
    # Both directions of the inverted pair are reported, at the inner
    # `with` of each nesting.
    assert sorted(lines(cycles)) == [15, 20]
    for f in cycles:
        assert "lock_cycle._alpha_lock" in f.message
        assert "lock_cycle._beta_lock" in f.message


def test_same_lock_nesting_detected():
    findings = run("lock-discipline", "lock_cycle.py")
    reentrant = [f for f in findings if "not reentrant" in f.message]
    assert len(reentrant) == 1
    assert reentrant[0].line == 25


def test_rank_inversion_via_pragma():
    findings = run("lock-discipline", "durable.py")
    assert len(findings) == 1
    (f,) = findings
    assert "lock order inversion" in f.message
    assert "'durable.gate'" in f.message
    assert "'wal.append'" in f.message
    assert f.line == 12  # the `with self._gate.read_locked():` line


def test_unguarded_write_detected():
    findings = run("lock-discipline", "wal.py")
    assert len(findings) == 1
    (f,) = findings
    assert "WriteAheadLog.syncs" in f.message
    assert "outside any lock scope" in f.message
    assert f.line == 11


# ---------------------------------------------------------------------------
# failpoint-parity
# ---------------------------------------------------------------------------


def test_failpoint_parity_both_directions_and_non_literal():
    findings = run("failpoint-parity", "failpoints.py", "caller.py")
    unregistered = [f for f in findings if "io.unregistered" in f.message]
    never_fired = [f for f in findings if "io.never_fired" in f.message]
    non_literal = [f for f in findings if "not a string literal" in f.message]
    assert len(unregistered) == 1
    assert unregistered[0].path.endswith("caller.py")
    assert unregistered[0].line == 10
    assert len(never_fired) == 1
    assert never_fired[0].path.endswith("failpoints.py")
    assert never_fired[0].line == 7  # registry entry line
    assert len(non_literal) == 1
    assert non_literal[0].line == 11
    assert len(findings) == 3


def test_failpoint_parity_skips_without_registry():
    # No registry in scope -> nothing to compare against.
    assert run("failpoint-parity", "caller.py") == []


# ---------------------------------------------------------------------------
# stats-parity
# ---------------------------------------------------------------------------


def test_stats_typo_detected_direct_and_alias():
    findings = run("stats-parity", "stats_typo.py")
    assert len(findings) == 2
    by_line = {f.line: f for f in findings}
    assert 18 in by_line and "appendz" in by_line[18].message
    assert 22 in by_line and "appned" in by_line[22].message


# ---------------------------------------------------------------------------
# api-parity
# ---------------------------------------------------------------------------


def test_api_gap_detected():
    findings = run("api-parity", "api_gap.py")
    assert len(findings) == 1
    (f,) = findings
    assert "PartialTree" in f.message
    assert f.line == 5  # class definition line
    for missing in ("insert_many", "range_iter", "scrub", "check"):
        assert missing in f.message
    assert "get_many" not in f.message  # present, must not be reported


# ---------------------------------------------------------------------------
# layout-parity
# ---------------------------------------------------------------------------


def test_layout_gap_detected():
    findings = run("layout-parity", "layout_gap.py")
    assert len(findings) == 1
    (f,) = findings
    assert "LayoutlessTree" in f.message
    assert f.line == 5  # class definition line
    assert "layout" in f.message


def test_layout_inherited_is_clean():
    # LabelledTree defines `layout`; InheritsLabel gets it by base
    # resolution — neither may be reported.
    findings = run("layout-parity", "layout_gap.py")
    names = " ".join(f.message for f in findings)
    assert "LabelledTree" not in names
    assert "InheritsLabel" not in names


# ---------------------------------------------------------------------------
# async-blocking
# ---------------------------------------------------------------------------


def test_async_blocking_two_frames_deep():
    findings = run("async-blocking", "async_block.py")
    fsync = [f for f in findings if "os.fsync" in f.message]
    assert len(fsync) == 1
    (f,) = fsync
    assert f.line == 13  # the os.fsync call site, not the async def
    assert "async def async_block.handler" in f.message
    # The witness path names every frame between entry and the call.
    assert "async_block.handler -> async_block._middle" in f.message
    assert "_sync_flush" in f.message


def test_async_blocking_sync_lock_in_async_body():
    findings = run("async-blocking", "async_block.py")
    locks = [f for f in findings if "sync lock" in f.message]
    assert len(locks) == 1
    assert locks[0].line == 38
    assert "async_block._table_lock" in locks[0].message


def test_async_blocking_executor_and_pragma_suppress():
    findings = run("async-blocking", "async_block.py")
    # Exactly the two seeded sites fire: the executor-bridged flush,
    # the pragma'd sleep, and the pragma'd function stay silent.
    assert sorted(lines(findings)) == [13, 38]


def test_async_blocking_awaited_flavors_exempt():
    # `await lock.acquire()` and combinator-wrapped acquires are the
    # asyncio flavors — the shipped admission controller uses both.
    src = Path(__file__).parent.parent / "src" / "repro" / "net"
    project = Project.from_paths([src / "admission.py"])
    assert run_rules(project, ["async-blocking"]) == []


# ---------------------------------------------------------------------------
# deadline-discipline
# ---------------------------------------------------------------------------


def test_deadline_missing_budget_fires():
    findings = run("deadline-discipline", "deadline_gap.py")
    assert sorted(lines(findings)) == [10, 13]
    by_line = {f.line: f for f in findings}
    assert "`wait`" in by_line[10].message
    assert "`drain_acks`" in by_line[13].message
    for f in findings:
        assert "deadline/budget" in f.message


def test_deadline_bounded_bridge_is_clean():
    findings = run("deadline-discipline", "deadline_gap.py")
    # good_wait passes the deadline through and must not be reported.
    assert 17 not in lines(findings)


# ---------------------------------------------------------------------------
# exception-flow
# ---------------------------------------------------------------------------


def test_exception_flow_raw_oserror_leak():
    findings = run("exception-flow", "exc_leak.py")
    leaks = [f for f in findings if "raw OSError" in f.message]
    assert len(leaks) == 1
    (f,) = leaks
    assert f.line == 19  # the seeded raise site, two frames down
    assert "handler_leak" in f.message
    assert "ST_*" in f.message


def test_exception_flow_machinery_swallow():
    findings = run("exception-flow", "exc_leak.py")
    swallows = [f for f in findings if "catch-all" in f.message]
    assert len(swallows) == 1
    assert swallows[0].line == 34
    assert "bare `raise`" in swallows[0].message


def test_exception_flow_refusal_wrapped_retryable():
    findings = run("exception-flow", "exc_leak.py")
    wraps = [f for f in findings if "typed refusal" in f.message]
    assert len(wraps) == 1
    assert wraps[0].line == 42
    assert "ReadOnlyError" in wraps[0].message
    assert "TransientNetworkError" in wraps[0].message


def test_exception_flow_catch_and_map_is_clean():
    findings = run("exception-flow", "exc_leak.py")
    # handler_clean catches the same deep OSError and maps it; only the
    # three seeded sites may fire.
    assert sorted(lines(findings)) == [19, 34, 42]


def test_new_rules_cli_exit_codes(capsys):
    for fixture in ("async_block.py", "deadline_gap.py", "exc_leak.py"):
        assert cli_main([str(FIXTURES / fixture)]) == 1
    capsys.readouterr()


# ---------------------------------------------------------------------------
# the shipped tree is clean
# ---------------------------------------------------------------------------


def test_src_tree_lints_clean():
    project = Project.from_paths([SRC])
    findings = run_rules(project)
    assert findings == [], "\n".join(f.format() for f in findings)
    # Sanity: the scan actually covered the package.
    assert len(project.files) > 50


def test_parse_errors_surface(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def f(:\n")
    project = Project.from_paths([bad])
    findings = run_rules(project)
    assert len(findings) == 1
    assert findings[0].rule == "parse"


def test_unknown_rule_rejected():
    with pytest.raises(ValueError, match="unknown rule"):
        run_rules(Project.from_paths([]), ["no-such-rule"])


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def test_cli_list_rules(capsys):
    assert cli_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in all_rules():
        assert rule.name in out


def test_cli_exit_codes(capsys):
    assert cli_main([str(FIXTURES / "asserts.py")]) == 1
    assert cli_main([str(SRC)]) == 0
    assert cli_main([str(FIXTURES / "no-such-dir")]) == 2
    assert cli_main(["--rule", "bogus", str(SRC)]) == 2
    capsys.readouterr()


def test_cli_json_output(capsys):
    code = cli_main(["--format", "json", str(FIXTURES / "asserts.py")])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["rule"] == "no-bare-assert"
    assert payload[0]["line"] == 6


def test_cli_rule_filter(capsys):
    code = cli_main(
        ["--rule", "stats-parity", str(FIXTURES / "asserts.py")]
    )
    capsys.readouterr()
    assert code == 0  # bare assert invisible to the stats rule


def test_cli_summary_format_matches_baseline_shape(capsys):
    code = cli_main(["--format", "summary", str(SRC)])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["files"] > 50
    # Every registered rule appears with an explicit (zero) count — the
    # committed CI baseline diffs against exactly this shape.
    assert sorted(payload["findings"]) == sorted(
        r.name for r in all_rules()
    )
    assert all(count == 0 for count in payload["findings"].values())
    baseline = (
        Path(__file__).parent.parent / ".github" / "quit-check-baseline.json"
    )
    assert json.loads(baseline.read_text()) == payload
