"""Multi-process network chaos soak (tentpole acceptance test).

Client processes drive a served tree over real sockets while the
harness SIGKILLs and restarts the server, arms ``io.*`` disk faults,
and partitions the replica link.  The invariants:

* **zero acked-write loss** — every response a client saw is in the
  cold-recovered state;
* **zero duplicate applies** — dedup probes (same request id sent
  twice) never observe a second apply within a server tenure;
* **bounded error windows** — client-visible outages stay under
  ``ERROR_WINDOW_BOUND``;
* **graceful drain** — the final SIGTERM settles in-flight requests,
  checkpoints, and exits 0.

The default run keeps tier-1 fast; CI fans out with environment
knobs::

    NETCHAOS_DURATION=20 NETCHAOS_CLIENTS=4 CHAOS_SEED_OFFSET=10 pytest ...
"""

import os

import pytest

from repro.testing.chaos import run_network_soak

DURATION = float(os.environ.get("NETCHAOS_DURATION", "6"))
CLIENTS = int(os.environ.get("NETCHAOS_CLIENTS", "3"))
KILLS = int(os.environ.get("NETCHAOS_KILLS", "1"))
SEED_OFFSET = int(os.environ.get("CHAOS_SEED_OFFSET", "0"))

posix_only = pytest.mark.skipif(
    os.name != "posix", reason="POSIX signals/multiprocessing required"
)


@posix_only
def test_network_soak_loses_no_acked_write(tmp_path):
    report = run_network_soak(
        tmp_path,
        clients=CLIENTS,
        duration=DURATION,
        kills=KILLS,
        seed=SEED_OFFSET,
    )
    assert report.ok, report.summary()
    assert report.lost_acks == 0
    assert report.duplicate_applies == 0
    assert report.result_mismatches == 0
    assert report.drain_exit_code == 0


@posix_only
def test_network_soak_actually_bites(tmp_path):
    """The soak must inject real adversity, not idle to green."""
    report = run_network_soak(
        tmp_path, clients=2, duration=DURATION, kills=1,
        seed=SEED_OFFSET + 1,
    )
    assert report.kills >= 1
    assert report.io_faults_armed >= 1
    assert report.partitions >= 1
    assert report.dedup_probes >= 1
    assert report.acked_puts > 0
    # Clients rode through at least one server tenure change.
    assert report.boot_ids_seen >= 2


@posix_only
def test_report_summary_is_printable(tmp_path):
    report = run_network_soak(
        tmp_path, clients=2, duration=3.0, kills=1, seed=SEED_OFFSET + 2
    )
    text = report.summary()
    assert "acked" in text
    assert "drain" in text
