"""Integration tests: every experiment runs end-to-end at a tiny scale
and reproduces the paper's qualitative shape."""

import math

import pytest

from repro.bench.experiments import EXPERIMENTS
from repro.bench.harness import BenchScale
from repro.bench.reporting import render

TINY = BenchScale(
    n=6_000, leaf_capacity=32, point_lookups=200, range_lookups=10,
    repeats=2, seed=7,
)


@pytest.fixture(scope="module")
def results():
    """Run every experiment once at the tiny scale (module-cached)."""
    return {exp_id: fn(TINY) for exp_id, fn in EXPERIMENTS.items()}


def check_with_retry(results, exp_id, check, retries=2):
    """Run ``check`` on a result; on failure re-run the experiment.

    Wall-clock-based shape assertions can flake on a loaded single-core
    machine; work-proportional assertions never need this.
    """
    try:
        check(results[exp_id])
        return
    except AssertionError:
        last = None
        for _ in range(retries):
            try:
                check(EXPERIMENTS[exp_id](TINY))
                return
            except AssertionError as exc:
                last = exc
        raise last


class TestAllExperimentsRun:
    def test_registry_covers_every_figure_and_table(self):
        expected = {
            "fig1a", "fig1b", "fig3", "fig5a", "fig5b", "fig8", "fig9",
            "fig10a", "fig10b", "fig10c", "fig11", "fig12", "fig13",
            "fig14", "fig15", "tab1", "tab2", "tab3", "ablation",
            "mixed_rw", "cache", "fig13real", "betree",
        }
        assert set(EXPERIMENTS) == expected

    def test_every_result_renders(self, results):
        for exp_id, result in results.items():
            text = render(result)
            assert exp_id in text
            assert result.rows, exp_id

    def test_columns_present_in_rows(self, results):
        for exp_id, result in results.items():
            for row in result.rows:
                missing = set(result.columns) - set(row)
                assert not missing, (exp_id, missing)


class TestShapes:
    def test_fig3_tail_collapses(self, results):
        rows = results["fig3"].rows
        assert rows[0]["fast_pct"] == 100.0  # K=0
        assert rows[-1]["fast_pct"] < 15.0   # K=10%

    def test_fig5a_lil_dominates_tail(self, results):
        # Tolerance covers statistical ties in the ~100% regime.
        for row in results["fig5a"].rows:
            assert row["lil_fast_pct"] >= row["tail_fast_pct"] - 0.5

    def test_fig5b_model_ordering(self, results):
        for row in results["fig5b"].rows:
            assert (
                row["ideal_pct"] + 1e-9
                >= row["lil_eq1_pct"]
                >= row["tail_model_pct"] - 1e-9
            )
            assert row["lil_sim_pct"] == pytest.approx(
                row["lil_eq1_pct"], abs=2.0
            )

    def test_fig8_quit_wins_when_near_sorted(self, results):
        def check(result):
            sorted_row = result.rows[0]
            assert sorted_row["quit_x"] > 1.3
            assert sorted_row["tail_x"] > 1.3
            # tail degrades once data is slightly unsorted; QuIT holds.
            k3 = result.row_for("k_pct", 3)
            assert k3["quit_x"] > k3["tail_x"] * 0.95

        check_with_retry(results, "fig8", check)

    def test_fig9_ordering(self, results):
        for row in results["fig9"].rows:
            if 0 < row["k_pct"] <= 50:
                assert row["quit_fast_pct"] >= row["tail_fast_pct"]
        k25 = results["fig9"].row_for("k_pct", 25)
        assert k25["quit_fast_pct"] > k25["lil_fast_pct"]

    def test_fig10a_quit_occupancy_dominates(self, results):
        for row in results["fig10a"].rows:
            assert row["quit_occ_pct"] >= row["btree_occ_pct"] - 6
        sorted_row = results["fig10a"].row_for("k_pct", 0)
        assert sorted_row["quit_occ_pct"] > 90
        assert sorted_row["btree_occ_pct"] < 60

    def test_fig10b_no_read_penalty(self, results):
        def check(result):
            ratios = [row["normalized"] for row in result.rows]
            # No read overhead: on average within noise of 1.0.
            mean = sum(ratios) / len(ratios)
            assert mean < 1.15

        check_with_retry(results, "fig10b", check)

    def test_fig10c_fewer_accesses_when_sorted(self, results):
        # The 0.1% selectivity touches only 1-2 leaves at tiny scale, so
        # the reduction shows at the wider selectivities.
        sorted_row = results["fig10c"].rows[0]
        assert sorted_row["sel_1pct_x"] > 1.3
        assert sorted_row["sel_10pct_x"] > 1.5

    def test_fig11_quit_beats_lil_at_low_sortedness(self, results):
        # At very small L (displacements within a leaf's range) both
        # fast paths behave alike, so the comparison targets L >= 25%.
        for row in results["fig11"].rows:
            if row["k_pct"] >= 25 and row["l_pct"] >= 25:
                assert (
                    row["quit_fast_pct"] >= row["lil_fast_pct"] - 3
                )

    def test_fig12_pole_traps_quit_recovers(self, results):
        rows = results["fig12"].rows
        last = rows[-1]
        assert last["QuIT_fast"] > last["pole-B+-tree_fast"]
        assert last["QuIT_fast"] > last["tail-B+-tree_fast"]
        # pole flatlines after the first scrambled segment.
        assert (
            rows[-1]["pole-B+-tree_fast"]
            <= rows[1]["pole-B+-tree_fast"] * 1.2
        )

    def test_fig13_quit_insert_ceiling_higher(self, results):
        rows = results["fig13"].rows
        by = {
            (r["workload"], r["sortedness"], r["index"]): r for r in rows
        }
        quit16 = by[("inserts", "nearly sorted", "QuIT")]["t16"]
        btree16 = by[("inserts", "nearly sorted", "B+-tree")]["t16"]
        assert quit16 > 1.3 * btree16
        # Lookups scale similarly for both.
        ql = by[("lookups", "nearly sorted", "QuIT")]
        bl = by[("lookups", "nearly sorted", "B+-tree")]
        assert ql["t8"] / ql["t1"] == pytest.approx(
            bl["t8"] / bl["t1"], rel=0.2
        )

    def test_fig14_quit_faster_than_sware(self, results):
        def check(result):
            for row in result.rows:
                assert row["quit_insert_us"] < row["sware_insert_us"]
                if row["k_pct"] > 0:
                    assert (
                        row["quit_lookup_us"]
                        < row["sware_lookup_us"] * 1.1
                    )

        check_with_retry(results, "fig14", check)

    def test_fig15_quit_and_lil_beat_plain_btree(self, results):
        def check(result):
            for row in result.rows:
                if row["index"] in ("QuIT", "lil-B+-tree"):
                    assert row["speedup_x"] > 1.1
                if row["index"] == "QuIT":
                    assert row["fast_pct"] > 60

        check_with_retry(results, "fig15", check)

    def test_tab1_quit_under_20_bytes(self, results):
        quit_row = results["tab1"].row_for("index", "QuIT")
        assert 0 < quit_row["extra_vs_lil_bytes"] < 20

    def test_tab2_reduction_shrinks_with_k(self, results):
        rows = results["tab2"].rows
        assert rows[0]["reduction_x"] > 1.7  # paper: 1.96x at K=0
        assert rows[-1]["reduction_x"] == pytest.approx(1.0, abs=0.12)
        reductions = [r["reduction_x"] for r in rows]
        assert reductions[0] == max(reductions)

    def test_tab3_fast_fraction_stable_across_sizes(self, results):
        rows = results["tab3"].rows
        by_sortedness: dict[str, list[float]] = {}
        for row in rows:
            by_sortedness.setdefault(row["sortedness"], []).append(
                row["fast_pct"]
            )
        for label, fracs in by_sortedness.items():
            assert max(fracs) - min(fracs) < 12, label
        assert all(
            f == pytest.approx(100.0)
            for f in by_sortedness["fully sorted"]
        )

    def test_ablation_features_matter(self, results):
        rows = results["ablation"].rows
        by = {(r["workload"], r["index"]): r for r in rows}
        stress_full = by[("stress (Fig.12)", "QuIT")]["fast_pct"]
        stress_no_reset = by[("stress (Fig.12)", "QuIT-no-reset")]["fast_pct"]
        assert stress_full > stress_no_reset + 15
        near_full_occ = by[("near-sorted (K=5%)", "QuIT")]["occ_pct"]
        near_50_occ = by[("near-sorted (K=5%)", "QuIT-50%-split")]["occ_pct"]
        assert near_full_occ > near_50_occ + 8

    def test_betree_flat_vs_quit_proportional(self, results):
        def check(result):
            be = [r["betree_x"] for r in result.rows]
            qt = [r["quit_x"] for r in result.rows]
            # QuIT's speedup swings with sortedness far more than the
            # Be-tree's (the §6 sortedness-unawareness argument).
            assert (max(qt) / min(qt)) > 1.5 * (max(be) / min(be))

        check_with_retry(results, "betree", check)

    def test_fig13real_runs_and_is_flat(self, results):
        def check(result):
            by = {
                (r["index"], r["threads"]): r["kops_per_sec"]
                for r in result.rows
            }
            # GIL: no superlinear scaling; the wrapper must stay correct
            # and at worst mildly degrade with threads.
            for name in ("B+-tree", "QuIT"):
                assert by[(name, 4)] < by[(name, 1)] * 2.0
                assert by[(name, 4)] > 0

        check_with_retry(results, "fig13real", check)

    def test_cache_mechanism(self, results):
        rows = results["cache"].rows
        by = {
            (r["cache_pct_of_btree"], r["index"]): r for r in rows
        }
        # Simulated I/O (cache misses) is the comparable metric: hit
        # *rate* is inflated for the taller tree, which re-touches its
        # always-hot root more often per lookup.
        for frac in (10.0, 25.0, 50.0, 75.0):
            assert (
                by[(frac, "QuIT")]["simulated_io"]
                <= by[(frac, "B+-tree")]["simulated_io"]
            )

    def test_mixed_rw_sware_decays_with_reads(self, results):
        def check(result):
            by = {
                (r["read_pct"], r["index"]): r["vs_btree_x"]
                for r in result.rows
            }
            # SWARE's relative throughput is worse at read-heavy mixes
            # than write-only (§2); QuIT stays near or above the B+-tree
            # (its read path is the B+-tree's, so read-heavy mixes
            # converge to parity within timing noise).
            assert by[(90, "SWARE")] < by[(0, "SWARE")]
            for pct in (0, 25, 50, 75, 90):
                assert by[(pct, "QuIT")] > 0.7
            assert by[(0, "QuIT")] > by[(0, "SWARE")]

        check_with_retry(results, "mixed_rw", check)

    def test_fig1b_quantified_comparison(self, results):
        def check(result):
            rows = {r["index"]: r for r in result.rows}
            # QuIT: high awareness, no read penalty, best memory, no
            # knobs.
            assert rows["QuIT"]["sortedness_awareness_pct"] > 85
            assert rows["QuIT"]["read_cost_norm"] < 1.3
            assert rows["QuIT"]["bytes_per_entry_norm"] < 0.9
            assert rows["QuIT"]["tuning_knobs"] == 0
            # tail: no awareness at K=5%; SWARE: most knobs, most code.
            assert rows["tail-B+-tree"]["sortedness_awareness_pct"] < 30
            assert rows["SWARE"]["tuning_knobs"] > 0
            assert (
                rows["SWARE"]["complexity_loc"]
                > rows["tail-B+-tree"]["complexity_loc"]
            )

        check_with_retry(results, "fig1b", check)

    def test_fig1a_headline(self, results):
        def check(result):
            by = {(r["sortedness"], r["index"]): r for r in result.rows}
            near_quit = by[("nearly sorted", "QuIT")]
            near_sware = by[("nearly sorted", "SWARE")]
            near_btree = by[("nearly sorted", "B+-tree")]
            assert near_quit["insert_speedup_vs_btree"] > 1.2
            assert near_quit["insert_us"] < near_sware["insert_us"]
            assert not math.isnan(near_btree["lookup_us"])

        check_with_retry(results, "fig1a", check)
