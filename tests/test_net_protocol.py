"""Wire-protocol tests: framing, payload encoding, and EOF semantics."""

import socket
import struct
import threading

import pytest

from repro.net import protocol


class TestPayloadCodec:
    @pytest.mark.parametrize("obj", [
        None, 0, -17, 3.5, "hello", b"\x00\xff", True,
        (1, "two", 3.0), [(1, 2), (3, 4)], {"k": [1, 2]}, (),
        "uniçode →", ("nested", (1, (2, (3,)))),
    ])
    def test_round_trip(self, obj):
        assert protocol.decode_payload(protocol.encode_payload(obj)) == obj

    def test_empty_payload_is_none(self):
        assert protocol.decode_payload(b"") is None

    def test_non_literal_object_refused(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.encode_payload(object())

    def test_undecodable_bytes_refused(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_payload(b"__import__('os')")
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_payload(b"\xff\xfe")


class TestRequestFrames:
    def test_round_trip(self):
        frame = protocol.encode_request(
            protocol.OP_PUT, 12345, 2.5, (1, "v")
        )
        (length,) = struct.unpack("!I", frame[:4])
        assert length == len(frame) - 4
        op, rid, budget, payload = protocol.decode_request(frame[4:])
        assert (op, rid, payload) == (protocol.OP_PUT, 12345, (1, "v"))
        assert budget == pytest.approx(2.5)

    def test_unknown_opcode_refused(self):
        body = struct.pack("!BQd", 200, 1, 1.0)
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_request(body)

    def test_short_frame_refused(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_request(b"\x01\x02")

    def test_oversize_refused_at_encode(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.encode_request(
                protocol.OP_PUT, 1, 1.0, "x" * (protocol.MAX_FRAME + 1)
            )


class TestResponseFrames:
    def test_round_trip_with_flags(self):
        frame = protocol.encode_response(
            protocol.ST_OK, 99, 0xDEADBEEF,
            protocol.FLAG_APPLIED | protocol.FLAG_DEDUPED, [1, 2],
        )
        status, rid, boot, flags, payload = protocol.decode_response(
            frame[4:]
        )
        assert status == protocol.ST_OK
        assert rid == 99
        assert boot == 0xDEADBEEF
        assert flags & protocol.FLAG_APPLIED
        assert flags & protocol.FLAG_DEDUPED
        assert payload == [1, 2]

    def test_unknown_status_refused(self):
        body = struct.pack("!BQIB", 250, 1, 0, 0)
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_response(body)


class TestBlockingFrameReader:
    def _pair(self):
        a, b = socket.socketpair()
        return a, b

    def test_reads_one_frame(self):
        a, b = self._pair()
        try:
            frame = protocol.encode_request(protocol.OP_GET, 7, 1.0, "k")
            a.sendall(frame)
            body = protocol.read_frame_blocking(b)
            op, rid, _, payload = protocol.decode_request(body)
            assert (op, rid, payload) == (protocol.OP_GET, 7, "k")
        finally:
            a.close()
            b.close()

    def test_clean_eof_returns_none(self):
        a, b = self._pair()
        a.close()
        try:
            assert protocol.read_frame_blocking(b) is None
        finally:
            b.close()

    def test_eof_mid_frame_raises_connection_error(self):
        a, b = self._pair()
        try:
            frame = protocol.encode_request(protocol.OP_GET, 7, 1.0, "key")
            a.sendall(frame[:-2])  # truncate inside the body
            a.close()
            with pytest.raises(ConnectionError):
                protocol.read_frame_blocking(b)
        finally:
            b.close()

    def test_oversize_length_prefix_refused(self):
        a, b = self._pair()
        try:
            a.sendall(struct.pack("!I", protocol.MAX_FRAME + 1))
            with pytest.raises(protocol.ProtocolError):
                protocol.read_frame_blocking(b)
        finally:
            a.close()
            b.close()

    def test_frame_split_across_sends(self):
        a, b = self._pair()
        try:
            frame = protocol.encode_request(
                protocol.OP_PUT, 3, 1.0, (1, "x" * 500)
            )
            done = threading.Event()

            def dribble():
                for i in range(0, len(frame), 37):
                    a.sendall(frame[i:i + 37])
                done.set()

            t = threading.Thread(target=dribble)
            t.start()
            body = protocol.read_frame_blocking(b)
            t.join()
            assert done.is_set()
            op, rid, _, payload = protocol.decode_request(body)
            assert payload == (1, "x" * 500)
        finally:
            a.close()
            b.close()
