"""Delete and rebalancing behaviour (§4.4) across every variant."""

import random

import pytest

from repro.core import BPlusTree, QuITTree, TreeConfig

from conftest import shuffled_keys, validate_tree


class TestDeleteBasics:
    def test_delete_missing_returns_false(self, small_config, any_tree_class):
        tree = any_tree_class(small_config)
        tree.insert(1, 1)
        assert tree.delete(2) is False
        assert len(tree) == 1

    def test_delete_existing(self, small_config, any_tree_class):
        tree = any_tree_class(small_config)
        tree.insert(1, "x")
        assert tree.delete(1) is True
        assert len(tree) == 0
        assert 1 not in tree

    def test_delete_from_empty(self, small_config, any_tree_class):
        tree = any_tree_class(small_config)
        assert tree.delete(5) is False

    def test_delete_counts(self, small_config):
        tree = BPlusTree(small_config)
        tree.insert(1, 1)
        tree.delete(1)
        tree.delete(1)
        assert tree.stats.deletes == 2


class TestDeleteRebalancing:
    def test_delete_everything(self, small_config, any_tree_class):
        tree = any_tree_class(small_config)
        keys = shuffled_keys(400, seed=5)
        for k in keys:
            tree.insert(k, k)
        for k in keys:
            assert tree.delete(k)
        assert len(tree) == 0
        assert list(tree.keys()) == []
        tree.validate()

    def test_delete_half_then_lookup(self, small_config, any_tree_class):
        tree = any_tree_class(small_config)
        keys = shuffled_keys(600, seed=6)
        for k in keys:
            tree.insert(k, k * 3)
        removed = set(keys[:300])
        for k in keys[:300]:
            assert tree.delete(k)
        validate_tree(tree)
        for k in keys:
            if k in removed:
                assert k not in tree
            else:
                assert tree.get(k) == k * 3

    def test_root_shrinks(self, small_config):
        tree = BPlusTree(small_config)
        for k in range(200):
            tree.insert(k, k)
        assert tree.height >= 3
        for k in range(195):
            tree.delete(k)
        tree.validate()
        assert tree.height < 3
        assert list(tree.keys()) == list(range(195, 200))

    def test_delete_ascending_order(self, small_config, any_tree_class):
        tree = any_tree_class(small_config)
        for k in range(300):
            tree.insert(k, k)
        for k in range(300):
            assert tree.delete(k)
        assert len(tree) == 0
        tree.validate()

    def test_delete_descending_order(self, small_config, any_tree_class):
        tree = any_tree_class(small_config)
        for k in range(300):
            tree.insert(k, k)
        for k in reversed(range(300)):
            assert tree.delete(k)
        assert len(tree) == 0
        tree.validate()

    def test_classical_min_fill_preserved(self, small_config):
        tree = BPlusTree(small_config)
        keys = shuffled_keys(500, seed=7)
        for k in keys:
            tree.insert(k, k)
        rng = random.Random(8)
        for k in rng.sample(keys, 250):
            tree.delete(k)
        # The classical tree rebalances eagerly, so strict min-fill holds.
        tree.validate(check_min_fill=True)

    def test_interleaved_insert_delete(self, small_config, any_tree_class):
        tree = any_tree_class(small_config)
        oracle: dict[int, int] = {}
        rng = random.Random(11)
        for step in range(3000):
            k = rng.randrange(500)
            if rng.random() < 0.6:
                tree.insert(k, step)
                oracle[k] = step
            else:
                assert tree.delete(k) == (k in oracle)
                oracle.pop(k, None)
        assert sorted(oracle.items()) == list(tree.items())
        validate_tree(tree)


class TestQuITDeleteSpecifics:
    def test_pole_delete_skips_eager_rebalance(self):
        cfg = TreeConfig(leaf_capacity=8, internal_capacity=8)
        tree = QuITTree(cfg)
        for k in range(100):
            tree.insert(k, k)
        pole = tree.fast_path_leaf
        assert pole is not None and pole.size > 0
        # Delete everything but one entry from the pole: no rebalance is
        # triggered even though the pole goes under min-fill.
        for k in list(pole.keys)[:-1]:
            tree.delete(k)
        assert tree.fast_path_leaf is pole
        assert pole.size == 1
        validate_tree(tree)

    def test_pole_emptied_resets_to_prev(self):
        cfg = TreeConfig(leaf_capacity=8, internal_capacity=8)
        tree = QuITTree(cfg)
        for k in range(100):
            tree.insert(k, k)
        pole = tree.fast_path_leaf
        prev = tree.pole_prev
        assert prev is not None
        for k in list(pole.keys):
            tree.delete(k)
        assert tree.fast_path_leaf is prev
        validate_tree(tree)

    def test_insert_after_pole_emptied(self):
        cfg = TreeConfig(leaf_capacity=8, internal_capacity=8)
        tree = QuITTree(cfg)
        for k in range(100):
            tree.insert(k, k)
        for k in list(tree.fast_path_leaf.keys):
            tree.delete(k)
        # The tree remains fully usable afterwards.
        for k in range(100, 160):
            tree.insert(k, k)
        validate_tree(tree)
        for k in range(100, 160):
            assert tree.get(k) == k


class TestFastPathSurvivesDeletes:
    def test_fastpath_bounds_refresh_after_borrow(
        self, small_config, fastpath_tree_class
    ):
        tree = fastpath_tree_class(small_config)
        keys = shuffled_keys(300, seed=13)
        for k in keys:
            tree.insert(k, k)
        rng = random.Random(14)
        for k in rng.sample(keys, 150):
            tree.delete(k)
        # After structural deletes, fast-path inserts must still place
        # keys correctly.
        for k in range(1000, 1300):
            tree.insert(k, k)
        validate_tree(tree)
        remaining = sorted(set(keys) - set(
            k for k in keys if k not in tree
        ))
        for k in remaining[:50]:
            assert tree.get(k) == k

    def test_fastpath_leaf_merged_away(self, small_config, fastpath_tree_class):
        tree = fastpath_tree_class(small_config)
        for k in range(200):
            tree.insert(k, k)
        # Delete the upper region so the fast-path leaf merges away.
        for k in range(150, 200):
            tree.delete(k)
        validate_tree(tree)
        for k in range(200, 260):
            tree.insert(k, k)
        validate_tree(tree)
        assert list(tree.keys()) == list(range(150)) + list(range(200, 260))
