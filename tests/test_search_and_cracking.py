"""Tests for interpolation search and query-driven page cracking."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sware.buffer import SortednessBuffer
from repro.sware.search import (
    interpolation_search,
    interpolation_search_leftmost,
)
from repro.sware import SABPlusTree
from repro.core import TreeConfig


class TestInterpolationSearch:
    def test_empty(self):
        assert interpolation_search([], 5) is None

    def test_uniform_keys(self):
        keys = list(range(0, 2000, 2))
        for probe in (0, 500, 1998):
            assert keys[interpolation_search(keys, probe)] == probe
        for probe in (1, 999, -5, 2001):
            assert interpolation_search(keys, probe) is None

    def test_single_element(self):
        assert interpolation_search([7], 7) == 0
        assert interpolation_search([7], 8) is None

    def test_all_equal_keys(self):
        keys = [5] * 100
        assert interpolation_search(keys, 5) is not None
        assert interpolation_search(keys, 6) is None

    def test_skewed_distribution_falls_back(self):
        # Exponentially spaced keys defeat interpolation; the binary
        # fallback must still find everything.
        keys = sorted({2 ** i for i in range(40)})
        for k in keys:
            assert keys[interpolation_search(keys, k)] == k
        assert interpolation_search(keys, 3) is None

    def test_floats(self):
        keys = [i * 0.5 for i in range(100)]
        assert interpolation_search(keys, 24.5) == 49

    @settings(max_examples=60, deadline=None)
    @given(
        keys=st.lists(
            st.integers(-10**6, 10**6), min_size=1, max_size=300,
            unique=True,
        ),
        probe=st.integers(-10**6, 10**6),
    )
    def test_matches_linear_scan(self, keys, probe):
        keys = sorted(keys)
        idx = interpolation_search(keys, probe)
        if probe in keys:
            assert idx is not None and keys[idx] == probe
        else:
            assert idx is None

    @settings(max_examples=60, deadline=None)
    @given(
        keys=st.lists(st.integers(0, 10**6), min_size=0, max_size=200),
        probe=st.integers(0, 10**6),
    )
    def test_leftmost_matches_bisect(self, keys, probe):
        from bisect import bisect_left

        keys = sorted(keys)
        assert interpolation_search_leftmost(keys, probe) == bisect_left(
            keys, probe
        )


class TestBufferInterpolation:
    def test_sorted_page_lookups(self):
        buf = SortednessBuffer(200, page_capacity=50, use_interpolation=True)
        for k in range(0, 300, 2):
            buf.append(k, k * 10)
        for k in range(0, 300, 2):
            assert buf.get(k) == (True, k * 10)
        assert buf.get(1) == (False, None)


class TestCracking:
    def _unsorted_buffer(self, **kwargs):
        buf = SortednessBuffer(400, page_capacity=20, **kwargs)
        rng = random.Random(3)
        keys = list(range(100))
        rng.shuffle(keys)
        for k in keys:
            buf.append(k, k * 7)
        return buf, keys

    def test_crack_on_read_sorts_probed_pages(self):
        buf, keys = self._unsorted_buffer(crack_on_read=True)
        assert buf.stats.pages_cracked == 0
        for k in keys:
            assert buf.get(k) == (True, k * 7)
        assert buf.stats.pages_cracked > 0
        # Cracked pages are now sorted.
        sorted_pages = sum(1 for p in buf._pages if p.sorted)
        assert sorted_pages >= buf.stats.pages_cracked

    def test_cracking_preserves_results(self):
        plain, keys = self._unsorted_buffer()
        cracked, _ = self._unsorted_buffer(crack_on_read=True)
        for k in keys + [-1, 500]:
            assert plain.get(k) == cracked.get(k)
        # Repeat probes after cracking still agree.
        for k in keys[:30]:
            assert cracked.get(k) == (True, k * 7)

    def test_cracking_latest_duplicate_wins(self):
        buf = SortednessBuffer(100, page_capacity=50, crack_on_read=True)
        buf.append(5, "first")
        buf.append(9, "x")
        buf.append(3, "y")       # makes the page unsorted
        buf.append(5, "second")  # duplicate, latest
        # Seal the page and open a new one so cracking applies.
        for k in range(100, 100 + 50):
            buf.append(k, k)
        assert buf.get(5) == (True, "second")
        assert buf.get(5) == (True, "second")  # post-crack probe

    def test_open_tail_page_not_cracked(self):
        buf = SortednessBuffer(100, page_capacity=50, crack_on_read=True)
        buf.append(9, 9)
        buf.append(3, 3)
        buf.get(3)
        assert buf.stats.pages_cracked == 0
        assert list(buf.items()) == [(9, 9), (3, 3)]

    def test_sa_tree_with_cracking_matches_oracle(self):
        cfg = TreeConfig(leaf_capacity=16, internal_capacity=16)
        sa = SABPlusTree(
            cfg, buffer_capacity=64, page_capacity=16,
            crack_on_read=True, use_interpolation=True,
        )
        rng = random.Random(5)
        oracle = {}
        keys = list(range(3000))
        rng.shuffle(keys)
        for k in keys:
            sa.insert(k, -k)
            oracle[k] = -k
            if rng.random() < 0.05:
                probe = rng.randrange(3000)
                assert sa.get(probe, None) == oracle.get(probe)
        assert list(sa.items()) == sorted(oracle.items())
