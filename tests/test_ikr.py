"""Tests for the In-order Key estimatoR (Eq. 2)."""

import pytest

from repro.core.ikr import ikr_threshold, is_outlier


class TestIkrThreshold:
    def test_dense_integers(self):
        # p=0, q=32, prev holds 32 entries: density 1.0.
        # x = 32 + 1.0 * 64 * 1.5 = 128.
        assert ikr_threshold(0, 32, 32, 64) == 128.0

    def test_scale_widens_acceptance(self):
        tight = ikr_threshold(0, 32, 32, 64, scale=1.0)
        wide = ikr_threshold(0, 32, 32, 64, scale=2.0)
        assert wide > tight

    def test_sparse_keys_widen_window(self):
        dense = ikr_threshold(0, 32, 32, 64)
        sparse = ikr_threshold(0, 3200, 32, 64)
        assert sparse > dense

    def test_zero_density_degenerate(self):
        # q == p (duplicate-ish boundary): acceptance collapses to q.
        assert ikr_threshold(10, 10, 32, 64) == 10.0

    def test_pole_size_scales_window(self):
        small = ikr_threshold(0, 32, 32, 8)
        large = ikr_threshold(0, 32, 32, 512)
        assert large > small

    @pytest.mark.parametrize("kwargs", [
        dict(p=0, q=10, pole_prev_size=0, pole_size=4),
        dict(p=0, q=10, pole_prev_size=-1, pole_size=4),
        dict(p=0, q=10, pole_prev_size=4, pole_size=-1),
        dict(p=10, q=0, pole_prev_size=4, pole_size=4),
    ])
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            ikr_threshold(**kwargs)

    def test_float_keys(self):
        x = ikr_threshold(0.5, 1.5, 10, 20, scale=1.5)
        assert x == pytest.approx(1.5 + 0.1 * 20 * 1.5)


class TestIsOutlier:
    def test_in_order_key_is_not_outlier(self):
        assert not is_outlier(100, 0, 32, 32, 64)

    def test_far_key_is_outlier(self):
        assert is_outlier(10_000, 0, 32, 32, 64)

    def test_boundary_is_inclusive(self):
        x = ikr_threshold(0, 32, 32, 64)
        assert not is_outlier(x, 0, 32, 32, 64)
        assert is_outlier(x + 1, 0, 32, 32, 64)
