"""Tests for the quit-bench CLI."""

import pytest

from repro.bench.cli import build_parser, main, scale_from_args


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        scale = scale_from_args(args)
        assert scale.n == 100_000

    def test_smoke_flag(self):
        args = build_parser().parse_args(["--smoke"])
        scale = scale_from_args(args)
        assert scale.n == 20_000

    def test_overrides(self):
        args = build_parser().parse_args(
            ["--n", "500", "--leaf-capacity", "16", "--seed", "3"]
        )
        scale = scale_from_args(args)
        assert (scale.n, scale.leaf_capacity, scale.seed) == (500, 16, 3)


class TestMain:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig8" in out and "tab2" in out

    def test_unknown_experiment(self, capsys):
        assert main(["not-an-experiment"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_cheap_experiments(self, capsys):
        code = main(["fig5b", "tab1", "--n", "2000", "--smoke"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fig5b" in out
        assert "tab1" in out
        assert "scale:" in out

    def test_runs_measured_experiment(self, capsys):
        code = main(["fig3", "--n", "3000", "--leaf-capacity", "16",
                     "--smoke"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fast_pct" in out
