"""WAL unit tests: framing, fsync policies, rotation, and every
damaged-log edge case replay must tolerate."""

import struct
from pathlib import Path
import zlib

import pytest

from repro.core.wal import (
    WALError,
    WriteAheadLog,
    repair_wal,
    replay_wal,
    segment_paths,
)
from repro.testing import FailpointError, failpoints


@pytest.fixture
def wal_dir(tmp_path):
    return tmp_path / "wal"


def fill(wal, n=10):
    for i in range(n):
        wal.log_insert(i, f"v{i}")


class TestAppendAndReplay:
    def test_round_trip_all_op_kinds(self, wal_dir):
        with WriteAheadLog(wal_dir) as wal:
            wal.log_insert(1, "one")
            wal.log_delete(2)
            wal.log_insert_many([(3, None), (4, (4, "four"))])
        res = replay_wal(wal_dir)
        assert res.clean
        assert res.ops == [
            ("i", 1, "one"),
            ("d", 2),
            ("m", [(3, None), (4, (4, "four"))]),
        ]
        assert res.records == 3

    def test_empty_directory_replays_empty(self, wal_dir):
        res = replay_wal(wal_dir)
        assert res.clean
        assert res.ops == []
        assert res.segments_scanned == 0

    def test_empty_segment_replays_empty(self, wal_dir):
        # A WAL opened and closed without appends: directory exists but
        # holds no segment (segments are created lazily).
        wal = WriteAheadLog(wal_dir)
        wal.close()
        res = replay_wal(wal_dir)
        assert res.clean and res.ops == []
        # A zero-byte segment file is equally fine.
        (wal_dir / "wal-00000001.seg").write_bytes(b"")
        res = replay_wal(wal_dir)
        assert res.clean and res.ops == [] and res.segments_scanned == 1

    def test_non_literal_value_rejected_before_logging(self, wal_dir):
        wal = WriteAheadLog(wal_dir)
        with pytest.raises(WALError):
            wal.log_insert(1, object())
        wal.close()
        assert replay_wal(wal_dir).ops == []  # nothing half-written

    def test_successive_appenders_replay_in_order(self, wal_dir):
        with WriteAheadLog(wal_dir) as wal:
            wal.log_insert(1, "a")
        with WriteAheadLog(wal_dir) as wal:  # new segment, same log
            wal.log_insert(2, "b")
        res = replay_wal(wal_dir)
        assert [op[1] for op in res.ops] == [1, 2]
        assert res.segments_scanned == 2


class TestFsyncPoliciesAndRotation:
    def test_always_syncs_every_append(self, wal_dir):
        wal = WriteAheadLog(wal_dir, fsync="always")
        fill(wal, 5)
        assert wal.syncs == 5
        wal.close()

    def test_interval_syncs_every_n(self, wal_dir):
        wal = WriteAheadLog(wal_dir, fsync="interval", fsync_interval=4)
        fill(wal, 10)
        assert wal.syncs == 2  # at appends 4 and 8
        wal.close()
        assert wal.syncs == 3  # close always syncs

    def test_none_never_syncs_until_close(self, wal_dir):
        wal = WriteAheadLog(wal_dir, fsync="none")
        fill(wal, 10)
        assert wal.syncs == 0
        wal.close()

    def test_bad_policy_rejected(self, wal_dir):
        with pytest.raises(WALError):
            WriteAheadLog(wal_dir, fsync="sometimes")

    def test_rotation_caps_segment_size(self, wal_dir):
        wal = WriteAheadLog(wal_dir, segment_bytes=128)
        fill(wal, 30)
        wal.close()
        segs = segment_paths(wal_dir)
        assert len(segs) > 1
        assert all(s.stat().st_size <= 128 for s in segs)
        res = replay_wal(wal_dir)
        assert res.clean and res.records == 30

    def test_truncate_removes_all_segments(self, wal_dir):
        wal = WriteAheadLog(wal_dir, segment_bytes=128)
        fill(wal, 30)
        removed = wal.truncate()
        assert removed >= 2
        assert segment_paths(wal_dir) == []
        wal.log_insert(99, "after")  # appender survives truncation
        wal.close()
        assert [op[1] for op in replay_wal(wal_dir).ops] == [99]


class TestDamagedLogs:
    """Satellite: empty log, truncated length prefix, flipped byte —
    replay stops cleanly and reports, never raises."""

    def make_log(self, wal_dir, n=10):
        with WriteAheadLog(wal_dir) as wal:
            fill(wal, n)
        (seg,) = segment_paths(wal_dir)
        return seg

    def test_truncated_length_prefix(self, wal_dir):
        seg = self.make_log(wal_dir)
        data = seg.read_bytes()
        seg.write_bytes(data[: len(data) - len(data) // 3])  # mid-record
        res = replay_wal(wal_dir)
        assert res.truncated_tail
        assert 0 < res.records < 10
        assert res.tail_bytes_dropped > 0
        assert res.checksum_failures == 0
        # Degenerate torn tail: fewer bytes than one header.
        seg.write_bytes(data[: 5])
        res = replay_wal(wal_dir)
        assert res.truncated_tail and res.records == 0
        assert res.tail_bytes_dropped == 5

    def test_truncated_payload(self, wal_dir):
        seg = self.make_log(wal_dir, n=1)
        data = seg.read_bytes()
        seg.write_bytes(data[:-1])
        res = replay_wal(wal_dir)
        assert res.truncated_tail and res.records == 0

    def test_flipped_payload_byte(self, wal_dir):
        seg = self.make_log(wal_dir)
        data = bytearray(seg.read_bytes())
        # Flip one byte inside the *last* record's payload.
        length, _ = struct.unpack_from("<II", data, 0)
        data[-2] ^= 0xFF
        seg.write_bytes(bytes(data))
        res = replay_wal(wal_dir)
        assert res.checksum_failures == 1
        assert res.records == 9
        assert not res.truncated_tail
        assert res.tail_bytes_dropped == 8 + length  # header + payload

    def test_flipped_byte_mid_log_drops_later_records_too(self, wal_dir):
        seg = self.make_log(wal_dir)
        data = bytearray(seg.read_bytes())
        data[10] ^= 0x01  # first record's payload
        seg.write_bytes(bytes(data))
        res = replay_wal(wal_dir)
        assert res.records == 0
        assert res.checksum_failures == 1
        assert res.tail_bytes_dropped == len(data)

    def test_damage_in_early_segment_drops_later_segments(self, wal_dir):
        with WriteAheadLog(wal_dir, segment_bytes=128) as wal:
            fill(wal, 30)
        segs = segment_paths(wal_dir)
        assert len(segs) >= 3
        data = bytearray(segs[0].read_bytes())
        data[-1] ^= 0x10
        segs[0].write_bytes(bytes(data))
        res = replay_wal(wal_dir)
        assert res.corrupt_segment == segs[0]
        later = sum(s.stat().st_size for s in segs[1:])
        assert res.tail_bytes_dropped >= later

    def test_crc_valid_but_undecodable_payload(self, wal_dir):
        seg = wal_dir
        seg.mkdir()
        payload = b"not a python literal ]["
        rec = struct.pack("<II", len(payload), zlib.crc32(payload)) + payload
        (wal_dir / "wal-00000001.seg").write_bytes(rec)
        res = replay_wal(wal_dir)
        assert res.checksum_failures == 1 and res.records == 0


class TestRepair:
    def test_repair_trims_to_last_valid_record(self, wal_dir):
        with WriteAheadLog(wal_dir) as wal:
            fill(wal, 10)
        (seg,) = segment_paths(wal_dir)
        data = seg.read_bytes()
        seg.write_bytes(data[:-3])  # torn tail
        res = replay_wal(wal_dir)
        repair_wal(wal_dir, res)
        assert seg.stat().st_size == res.valid_offset
        # Appends after repair are visible to the next replay.
        with WriteAheadLog(wal_dir) as wal:
            wal.log_insert(777, "post-repair")
        res2 = replay_wal(wal_dir)
        assert res2.clean
        assert res2.ops[-1] == ("i", 777, "post-repair")
        assert res2.records == res.records + 1

    def test_repair_deletes_segments_after_the_damage(self, wal_dir):
        with WriteAheadLog(wal_dir, segment_bytes=128) as wal:
            fill(wal, 30)
        segs = segment_paths(wal_dir)
        data = bytearray(segs[0].read_bytes())
        data[-1] ^= 0x10
        segs[0].write_bytes(bytes(data))
        res = replay_wal(wal_dir)
        repair_wal(wal_dir, res)
        assert segment_paths(wal_dir) == [segs[0]]
        assert replay_wal(wal_dir).clean

    def test_repair_of_clean_log_is_a_no_op(self, wal_dir):
        with WriteAheadLog(wal_dir) as wal:
            fill(wal, 3)
        before = [(s, s.stat().st_size) for s in segment_paths(wal_dir)]
        res = replay_wal(wal_dir)
        repair_wal(wal_dir, res)
        assert [(s, s.stat().st_size) for s in segment_paths(wal_dir)] == before

    def test_replay_stops_at_a_missing_middle_segment(self, wal_dir):
        """A gap in the segment sequence ends replay: the post-gap
        records are newer than the hole they sit behind, so applying
        them would reorder history."""
        with WriteAheadLog(wal_dir, segment_bytes=128) as wal:
            fill(wal, 30)
        segs = segment_paths(wal_dir)
        assert len(segs) >= 4
        pre_gap = replay_wal(wal_dir)  # ground truth before the damage
        gap_records = len(
            replay_wal(wal_dir).ops
        )  # full count, for contrast below
        segs[1].unlink()
        res = replay_wal(wal_dir)
        assert not res.clean
        assert res.sequence_gap
        assert res.corrupt_segment == segs[2]  # first orphaned segment
        assert res.segments_scanned == 1  # only the pre-gap prefix
        assert len(res.ops) < gap_records
        # Every surviving op is a prefix of the undamaged history.
        assert res.ops == pre_gap.ops[: len(res.ops)]

    def test_repair_after_gap_deletes_orphaned_segments(self, wal_dir):
        with WriteAheadLog(wal_dir, segment_bytes=128) as wal:
            fill(wal, 30)
        segs = segment_paths(wal_dir)
        segs[1].unlink()
        res = replay_wal(wal_dir)
        repair_wal(wal_dir, res)
        # Only the consecutive clean prefix survives, whole: a gap
        # repair never truncates inside a segment.
        assert segment_paths(wal_dir) == [segs[0]]
        after = replay_wal(wal_dir)
        assert after.clean
        assert after.ops == res.ops
        # The log accepts appends again and replays them.
        with WriteAheadLog(wal_dir) as wal:
            wal.log_insert(777, "post-gap-repair")
        assert replay_wal(wal_dir).ops[-1] == ("i", 777, "post-gap-repair")

    def test_corruption_and_gap_across_segments_stops_at_first(
        self, wal_dir
    ):
        """Multi-segment damage: a checksum failure in an early segment
        wins over a gap later in the sequence — replay is strictly
        prefix-valid and repair acts on the first damage only."""
        with WriteAheadLog(wal_dir, segment_bytes=128) as wal:
            fill(wal, 40)
        segs = segment_paths(wal_dir)
        assert len(segs) >= 5
        data = bytearray(segs[1].read_bytes())
        data[-1] ^= 0x10
        segs[1].write_bytes(bytes(data))
        segs[3].unlink()
        res = replay_wal(wal_dir)
        assert not res.clean
        assert not res.sequence_gap  # the CRC damage came first
        assert res.corrupt_segment == segs[1]
        repair_wal(wal_dir, res)
        survivors = segment_paths(wal_dir)
        assert survivors == segs[:2]
        assert replay_wal(wal_dir).clean


class TestWALFailpoints:
    def test_raise_mode_surfaces_and_log_stays_consistent(self, wal_dir):
        wal = WriteAheadLog(wal_dir)
        wal.log_insert(1, "a")
        with failpoints.active("wal.before_fsync", mode="raise"):
            with pytest.raises(FailpointError):
                wal.log_insert(2, "b")
        wal.log_insert(3, "c")
        wal.close()
        res = replay_wal(wal_dir)
        # Record 2 was written before its fsync failed; all three are
        # intact — the point is no *framing* damage occurred.
        assert res.clean and [op[1] for op in res.ops] == [1, 2, 3]

    def test_crash_before_append_loses_only_that_record(self, wal_dir):
        from repro.testing import SimulatedCrash

        wal = WriteAheadLog(wal_dir)
        wal.log_insert(1, "a")
        with failpoints.active("wal.before_append", mode="crash"):
            with pytest.raises(SimulatedCrash):
                wal.log_insert(2, "b")
        res = replay_wal(wal_dir)
        assert res.clean and [op[1] for op in res.ops] == [1]


class TestContextManagerExit:
    def test_exit_flushes_on_keyboard_interrupt(self, wal_dir):
        """An interrupt leaves a *live* process, so __exit__ must still
        close and fsync — only SimulatedCrash models a dead one."""
        wal = WriteAheadLog(wal_dir, fsync="interval", fsync_interval=1000)
        with pytest.raises(KeyboardInterrupt):
            with wal:
                wal.log_insert(1, "a")
                raise KeyboardInterrupt
        assert wal._fh is None  # closed → final flush/fsync happened
        assert wal.syncs >= 1

    def test_exit_skips_close_on_simulated_crash(self, wal_dir):
        from repro.testing import SimulatedCrash

        wal = WriteAheadLog(wal_dir, fsync="none")
        with pytest.raises(SimulatedCrash):
            with wal:
                wal.log_insert(1, "a")
                raise SimulatedCrash("simulated crash")
        assert wal._fh is not None  # a dead process flushes nothing
        wal._fh.close()

class TestWALReader:
    """Streaming reads for replication: resume cursors, rotation,
    tailing semantics, truncation detection."""

    def read_all(self, wal_dir, position=None):
        from repro.core.wal import WALPosition, WALReader

        reader = WALReader(wal_dir)
        return reader.read(position or WALPosition(1, 0))

    def test_reads_records_with_positions(self, wal_dir):
        from repro.core.wal import WALPosition, WALReader

        with WriteAheadLog(wal_dir) as wal:
            fill(wal, 5)
        records, resume = WALReader(wal_dir).read(WALPosition(1, 0))
        assert len(records) == 5
        assert [r.op for r in records] == replay_wal(wal_dir).ops
        assert all(r.verify() for r in records)
        # Positions chain: each record starts where the previous ended.
        for a, b in zip(records, records[1:]):
            assert a.next_position == b.position
        assert resume == records[-1].next_position

    def test_resume_from_mid_stream_position(self, wal_dir):
        from repro.core.wal import WALPosition, WALReader

        with WriteAheadLog(wal_dir) as wal:
            fill(wal, 8)
        reader = WALReader(wal_dir)
        first, resume = reader.read(WALPosition(1, 0), max_records=3)
        rest, _ = reader.read(resume)
        assert len(first) == 3 and len(rest) == 5
        ops = [r.op for r in first + rest]
        assert ops == replay_wal(wal_dir).ops

    def test_read_follows_rotation(self, wal_dir):
        from repro.core.wal import WALPosition, WALReader

        with WriteAheadLog(wal_dir, segment_bytes=128) as wal:
            fill(wal, 30)
        assert len(segment_paths(wal_dir)) >= 3
        reader = WALReader(wal_dir)
        records = []
        pos = WALPosition(1, 0)
        while True:
            batch, pos = reader.read(pos, max_records=4)
            if not batch:
                break
            records.extend(batch)
        assert [r.op for r in records] == replay_wal(wal_dir).ops

    def test_inflight_tail_returns_cleanly(self, wal_dir):
        """An incomplete record at the tail of the *last* segment is an
        append in flight, not damage: the reader stops before it."""
        from repro.core.wal import WALPosition, WALReader

        with WriteAheadLog(wal_dir) as wal:
            fill(wal, 3)
        (seg,) = segment_paths(wal_dir)
        with seg.open("ab") as fh:
            fh.write(b"\x99\x00\x00\x00")  # half a header
        records, resume = WALReader(wal_dir).read(WALPosition(1, 0))
        assert len(records) == 3
        assert resume == records[-1].next_position  # stops before it

    def test_torn_tail_in_nonlast_segment_is_an_error(self, wal_dir):
        from repro.core.wal import WALPosition, WALReader, WALStreamError

        with WriteAheadLog(wal_dir, segment_bytes=128) as wal:
            fill(wal, 30)
        segs = segment_paths(wal_dir)
        assert len(segs) >= 3
        data = segs[0].read_bytes()
        segs[0].write_bytes(data[:-3])
        with pytest.raises(WALStreamError):
            WALReader(wal_dir).read(WALPosition(1, 0))

    def test_corrupt_record_is_a_stream_error(self, wal_dir):
        from repro.core.wal import WALPosition, WALReader, WALStreamError

        with WriteAheadLog(wal_dir) as wal:
            fill(wal, 5)
        (seg,) = segment_paths(wal_dir)
        data = bytearray(seg.read_bytes())
        data[10] ^= 0x01
        seg.write_bytes(bytes(data))
        # CRC damage below the tail must never be served as data.
        with pytest.raises(WALStreamError):
            WALReader(wal_dir).read(WALPosition(1, 0))

    def test_position_below_first_segment_is_truncated(self, wal_dir):
        from repro.core.wal import (
            WALPosition,
            WALReader,
            WALTruncatedError,
        )

        with WriteAheadLog(wal_dir, segment_bytes=128) as wal:
            fill(wal, 30)
        segs = segment_paths(wal_dir)
        segs[0].unlink()  # a checkpoint reclaimed the oldest segment
        with pytest.raises(WALTruncatedError):
            WALReader(wal_dir).read(WALPosition(1, 0))

    def test_position_at_tail_returns_empty(self, wal_dir):
        from repro.core.wal import WALReader

        wal = WriteAheadLog(wal_dir)
        fill(wal, 4)
        tail = wal.tail_position()
        records, resume = WALReader(wal_dir).read(tail)
        assert records == [] and resume == tail
        wal.close()

    def test_bytes_behind(self, wal_dir):
        from repro.core.wal import WALPosition, WALReader

        with WriteAheadLog(wal_dir, segment_bytes=128) as wal:
            fill(wal, 30)
        reader = WALReader(wal_dir)
        total = sum(s.stat().st_size for s in segment_paths(wal_dir))
        assert reader.bytes_behind(WALPosition(1, 0)) == total
        _, resume = reader.read(WALPosition(1, 0))
        assert reader.bytes_behind(resume) == 0

    def test_first_position(self, wal_dir):
        from repro.core.wal import WALPosition, first_position

        assert first_position(wal_dir) is None
        with WriteAheadLog(wal_dir, segment_bytes=128) as wal:
            fill(wal, 30)
        assert first_position(wal_dir) == WALPosition(1, 0)
        segment_paths(wal_dir)[0].unlink()
        assert first_position(wal_dir).segment > 1


class TestDirectoryFsync:
    """Satellite regression: segment create/unlink/rewrite must be
    followed by an fsync of the WAL directory itself, or the *names*
    can vanish in a crash even though the data was synced."""

    def _spy(self, monkeypatch):
        import repro.core.wal as wal_mod

        calls = []
        real = wal_mod._fsync_dir

        def spy(directory):
            calls.append(Path(directory))
            real(directory)

        monkeypatch.setattr(wal_mod, "_fsync_dir", spy)
        return calls

    def test_truncate_fsyncs_directory(self, wal_dir, monkeypatch):
        wal = WriteAheadLog(wal_dir, segment_bytes=128)
        fill(wal, 30)
        calls = self._spy(monkeypatch)
        wal.truncate()
        assert wal_dir in calls
        wal.close()

    def test_repair_fsyncs_directory(self, wal_dir, monkeypatch):
        with WriteAheadLog(wal_dir) as wal:
            fill(wal, 10)
        (seg,) = segment_paths(wal_dir)
        seg.write_bytes(seg.read_bytes()[:-3])
        res = replay_wal(wal_dir)
        calls = self._spy(monkeypatch)
        repair_wal(wal_dir, res)
        assert wal_dir in calls

    def test_rotation_fsyncs_directory(self, wal_dir, monkeypatch):
        wal = WriteAheadLog(wal_dir, segment_bytes=128)
        calls = self._spy(monkeypatch)
        fill(wal, 30)
        assert wal_dir in calls  # every new segment name made durable
        wal.close()
