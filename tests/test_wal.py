"""WAL unit tests: framing, fsync policies, rotation, and every
damaged-log edge case replay must tolerate."""

import struct
import zlib

import pytest

from repro.core.wal import (
    WALError,
    WriteAheadLog,
    repair_wal,
    replay_wal,
    segment_paths,
)
from repro.testing import FailpointError, failpoints


@pytest.fixture
def wal_dir(tmp_path):
    return tmp_path / "wal"


def fill(wal, n=10):
    for i in range(n):
        wal.log_insert(i, f"v{i}")


class TestAppendAndReplay:
    def test_round_trip_all_op_kinds(self, wal_dir):
        with WriteAheadLog(wal_dir) as wal:
            wal.log_insert(1, "one")
            wal.log_delete(2)
            wal.log_insert_many([(3, None), (4, (4, "four"))])
        res = replay_wal(wal_dir)
        assert res.clean
        assert res.ops == [
            ("i", 1, "one"),
            ("d", 2),
            ("m", [(3, None), (4, (4, "four"))]),
        ]
        assert res.records == 3

    def test_empty_directory_replays_empty(self, wal_dir):
        res = replay_wal(wal_dir)
        assert res.clean
        assert res.ops == []
        assert res.segments_scanned == 0

    def test_empty_segment_replays_empty(self, wal_dir):
        # A WAL opened and closed without appends: directory exists but
        # holds no segment (segments are created lazily).
        wal = WriteAheadLog(wal_dir)
        wal.close()
        res = replay_wal(wal_dir)
        assert res.clean and res.ops == []
        # A zero-byte segment file is equally fine.
        (wal_dir / "wal-00000001.seg").write_bytes(b"")
        res = replay_wal(wal_dir)
        assert res.clean and res.ops == [] and res.segments_scanned == 1

    def test_non_literal_value_rejected_before_logging(self, wal_dir):
        wal = WriteAheadLog(wal_dir)
        with pytest.raises(WALError):
            wal.log_insert(1, object())
        wal.close()
        assert replay_wal(wal_dir).ops == []  # nothing half-written

    def test_successive_appenders_replay_in_order(self, wal_dir):
        with WriteAheadLog(wal_dir) as wal:
            wal.log_insert(1, "a")
        with WriteAheadLog(wal_dir) as wal:  # new segment, same log
            wal.log_insert(2, "b")
        res = replay_wal(wal_dir)
        assert [op[1] for op in res.ops] == [1, 2]
        assert res.segments_scanned == 2


class TestFsyncPoliciesAndRotation:
    def test_always_syncs_every_append(self, wal_dir):
        wal = WriteAheadLog(wal_dir, fsync="always")
        fill(wal, 5)
        assert wal.syncs == 5
        wal.close()

    def test_interval_syncs_every_n(self, wal_dir):
        wal = WriteAheadLog(wal_dir, fsync="interval", fsync_interval=4)
        fill(wal, 10)
        assert wal.syncs == 2  # at appends 4 and 8
        wal.close()
        assert wal.syncs == 3  # close always syncs

    def test_none_never_syncs_until_close(self, wal_dir):
        wal = WriteAheadLog(wal_dir, fsync="none")
        fill(wal, 10)
        assert wal.syncs == 0
        wal.close()

    def test_bad_policy_rejected(self, wal_dir):
        with pytest.raises(WALError):
            WriteAheadLog(wal_dir, fsync="sometimes")

    def test_rotation_caps_segment_size(self, wal_dir):
        wal = WriteAheadLog(wal_dir, segment_bytes=128)
        fill(wal, 30)
        wal.close()
        segs = segment_paths(wal_dir)
        assert len(segs) > 1
        assert all(s.stat().st_size <= 128 for s in segs)
        res = replay_wal(wal_dir)
        assert res.clean and res.records == 30

    def test_truncate_removes_all_segments(self, wal_dir):
        wal = WriteAheadLog(wal_dir, segment_bytes=128)
        fill(wal, 30)
        removed = wal.truncate()
        assert removed >= 2
        assert segment_paths(wal_dir) == []
        wal.log_insert(99, "after")  # appender survives truncation
        wal.close()
        assert [op[1] for op in replay_wal(wal_dir).ops] == [99]


class TestDamagedLogs:
    """Satellite: empty log, truncated length prefix, flipped byte —
    replay stops cleanly and reports, never raises."""

    def make_log(self, wal_dir, n=10):
        with WriteAheadLog(wal_dir) as wal:
            fill(wal, n)
        (seg,) = segment_paths(wal_dir)
        return seg

    def test_truncated_length_prefix(self, wal_dir):
        seg = self.make_log(wal_dir)
        data = seg.read_bytes()
        seg.write_bytes(data[: len(data) - len(data) // 3])  # mid-record
        res = replay_wal(wal_dir)
        assert res.truncated_tail
        assert 0 < res.records < 10
        assert res.tail_bytes_dropped > 0
        assert res.checksum_failures == 0
        # Degenerate torn tail: fewer bytes than one header.
        seg.write_bytes(data[: 5])
        res = replay_wal(wal_dir)
        assert res.truncated_tail and res.records == 0
        assert res.tail_bytes_dropped == 5

    def test_truncated_payload(self, wal_dir):
        seg = self.make_log(wal_dir, n=1)
        data = seg.read_bytes()
        seg.write_bytes(data[:-1])
        res = replay_wal(wal_dir)
        assert res.truncated_tail and res.records == 0

    def test_flipped_payload_byte(self, wal_dir):
        seg = self.make_log(wal_dir)
        data = bytearray(seg.read_bytes())
        # Flip one byte inside the *last* record's payload.
        length, _ = struct.unpack_from("<II", data, 0)
        data[-2] ^= 0xFF
        seg.write_bytes(bytes(data))
        res = replay_wal(wal_dir)
        assert res.checksum_failures == 1
        assert res.records == 9
        assert not res.truncated_tail
        assert res.tail_bytes_dropped == 8 + length  # header + payload

    def test_flipped_byte_mid_log_drops_later_records_too(self, wal_dir):
        seg = self.make_log(wal_dir)
        data = bytearray(seg.read_bytes())
        data[10] ^= 0x01  # first record's payload
        seg.write_bytes(bytes(data))
        res = replay_wal(wal_dir)
        assert res.records == 0
        assert res.checksum_failures == 1
        assert res.tail_bytes_dropped == len(data)

    def test_damage_in_early_segment_drops_later_segments(self, wal_dir):
        with WriteAheadLog(wal_dir, segment_bytes=128) as wal:
            fill(wal, 30)
        segs = segment_paths(wal_dir)
        assert len(segs) >= 3
        data = bytearray(segs[0].read_bytes())
        data[-1] ^= 0x10
        segs[0].write_bytes(bytes(data))
        res = replay_wal(wal_dir)
        assert res.corrupt_segment == segs[0]
        later = sum(s.stat().st_size for s in segs[1:])
        assert res.tail_bytes_dropped >= later

    def test_crc_valid_but_undecodable_payload(self, wal_dir):
        seg = wal_dir
        seg.mkdir()
        payload = b"not a python literal ]["
        rec = struct.pack("<II", len(payload), zlib.crc32(payload)) + payload
        (wal_dir / "wal-00000001.seg").write_bytes(rec)
        res = replay_wal(wal_dir)
        assert res.checksum_failures == 1 and res.records == 0


class TestRepair:
    def test_repair_trims_to_last_valid_record(self, wal_dir):
        with WriteAheadLog(wal_dir) as wal:
            fill(wal, 10)
        (seg,) = segment_paths(wal_dir)
        data = seg.read_bytes()
        seg.write_bytes(data[:-3])  # torn tail
        res = replay_wal(wal_dir)
        repair_wal(wal_dir, res)
        assert seg.stat().st_size == res.valid_offset
        # Appends after repair are visible to the next replay.
        with WriteAheadLog(wal_dir) as wal:
            wal.log_insert(777, "post-repair")
        res2 = replay_wal(wal_dir)
        assert res2.clean
        assert res2.ops[-1] == ("i", 777, "post-repair")
        assert res2.records == res.records + 1

    def test_repair_deletes_segments_after_the_damage(self, wal_dir):
        with WriteAheadLog(wal_dir, segment_bytes=128) as wal:
            fill(wal, 30)
        segs = segment_paths(wal_dir)
        data = bytearray(segs[0].read_bytes())
        data[-1] ^= 0x10
        segs[0].write_bytes(bytes(data))
        res = replay_wal(wal_dir)
        repair_wal(wal_dir, res)
        assert segment_paths(wal_dir) == [segs[0]]
        assert replay_wal(wal_dir).clean

    def test_repair_of_clean_log_is_a_no_op(self, wal_dir):
        with WriteAheadLog(wal_dir) as wal:
            fill(wal, 3)
        before = [(s, s.stat().st_size) for s in segment_paths(wal_dir)]
        res = replay_wal(wal_dir)
        repair_wal(wal_dir, res)
        assert [(s, s.stat().st_size) for s in segment_paths(wal_dir)] == before


class TestWALFailpoints:
    def test_raise_mode_surfaces_and_log_stays_consistent(self, wal_dir):
        wal = WriteAheadLog(wal_dir)
        wal.log_insert(1, "a")
        with failpoints.active("wal.before_fsync", mode="raise"):
            with pytest.raises(FailpointError):
                wal.log_insert(2, "b")
        wal.log_insert(3, "c")
        wal.close()
        res = replay_wal(wal_dir)
        # Record 2 was written before its fsync failed; all three are
        # intact — the point is no *framing* damage occurred.
        assert res.clean and [op[1] for op in res.ops] == [1, 2, 3]

    def test_crash_before_append_loses_only_that_record(self, wal_dir):
        from repro.testing import SimulatedCrash

        wal = WriteAheadLog(wal_dir)
        wal.log_insert(1, "a")
        with failpoints.active("wal.before_append", mode="crash"):
            with pytest.raises(SimulatedCrash):
                wal.log_insert(2, "b")
        res = replay_wal(wal_dir)
        assert res.clean and [op[1] for op in res.ops] == [1]


class TestContextManagerExit:
    def test_exit_flushes_on_keyboard_interrupt(self, wal_dir):
        """An interrupt leaves a *live* process, so __exit__ must still
        close and fsync — only SimulatedCrash models a dead one."""
        wal = WriteAheadLog(wal_dir, fsync="interval", fsync_interval=1000)
        with pytest.raises(KeyboardInterrupt):
            with wal:
                wal.log_insert(1, "a")
                raise KeyboardInterrupt
        assert wal._fh is None  # closed → final flush/fsync happened
        assert wal.syncs >= 1

    def test_exit_skips_close_on_simulated_crash(self, wal_dir):
        from repro.testing import SimulatedCrash

        wal = WriteAheadLog(wal_dir, fsync="none")
        with pytest.raises(SimulatedCrash):
            with wal:
                wal.log_insert(1, "a")
                raise SimulatedCrash("simulated crash")
        assert wal._fh is not None  # a dead process flushes nothing
        wal._fh.close()
