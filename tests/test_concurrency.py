"""Tests for the concurrency layer: locks, concurrent wrappers, and the
contention model (§4.5, Fig. 13)."""

import random
import threading
import time

import pytest

from repro.concurrency import (
    ConcurrentTree,
    OperationProfile,
    RWLock,
    StripedLocks,
    insert_profile,
    lookup_profile,
    throughput,
    throughput_curve,
)
from repro.core import BPlusTree, QuITTree, TreeConfig

CFG = TreeConfig(leaf_capacity=16, internal_capacity=16)


class TestRWLock:
    def test_multiple_readers(self):
        lock = RWLock()
        lock.acquire_read()
        lock.acquire_read()
        lock.release_read()
        lock.release_read()

    def test_writer_excludes_readers(self):
        lock = RWLock()
        order = []

        def writer():
            with lock.write_locked():
                order.append("w-in")
                time.sleep(0.05)
                order.append("w-out")

        def reader():
            time.sleep(0.01)
            with lock.read_locked():
                order.append("r")

        threads = [
            threading.Thread(target=writer),
            threading.Thread(target=reader),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert order == ["w-in", "w-out", "r"]

    def test_writer_waits_for_readers(self):
        lock = RWLock()
        lock.acquire_read()
        acquired = threading.Event()

        def writer():
            lock.acquire_write()
            acquired.set()
            lock.release_write()

        t = threading.Thread(target=writer)
        t.start()
        time.sleep(0.02)
        assert not acquired.is_set()
        lock.release_read()
        t.join(timeout=1)
        assert acquired.is_set()


class TestStripedLocks:
    def test_rejects_bad_stripes(self):
        with pytest.raises(ValueError):
            StripedLocks(0)

    def test_same_id_same_lock(self):
        locks = StripedLocks(8)
        assert locks.lock_for(5) is locks.lock_for(5)
        assert locks.lock_for(5) is locks.lock_for(13)  # same stripe

    def test_context_manager(self):
        locks = StripedLocks(4)
        with locks.locked(7):
            assert locks.lock_for(7).locked()
        assert not locks.lock_for(7).locked()


class TestConcurrentTree:
    @pytest.mark.parametrize("tree_cls", [BPlusTree, QuITTree])
    def test_concurrent_inserts_complete(self, tree_cls):
        ct = ConcurrentTree(tree_cls(CFG))
        keys = list(range(2000))
        random.Random(0).shuffle(keys)
        errors = []

        def worker(chunk):
            try:
                for k in chunk:
                    ct.insert(k, k * 2)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(keys[i::4],))
            for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(ct) == 2000
        ct.validate()
        for k in range(0, 2000, 97):
            assert ct.get(k) == k * 2

    def test_sorted_concurrent_ingest_uses_fast_path(self):
        ct = ConcurrentTree(QuITTree(CFG))
        for k in range(2000):
            ct.insert(k, k)
        assert ct.fast_path_inserts > 1000
        ct.validate()

    def test_mixed_readers_and_writers(self):
        ct = ConcurrentTree(QuITTree(CFG))
        stop = threading.Event()
        errors = []

        def writer():
            try:
                for k in range(3000):
                    ct.insert(k, k)
            finally:
                stop.set()

        def reader():
            rng = random.Random(1)
            try:
                while not stop.is_set():
                    k = rng.randrange(3000)
                    v = ct.get(k)
                    assert v is None or v == k
                    ct.range_query(k, k + 10)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(ct) == 3000

    def test_concurrent_deletes(self):
        ct = ConcurrentTree(BPlusTree(CFG))
        for k in range(1000):
            ct.insert(k, k)
        errors = []

        def deleter(chunk):
            try:
                for k in chunk:
                    assert ct.delete(k)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        keys = list(range(1000))
        threads = [
            threading.Thread(target=deleter, args=(keys[i::2],))
            for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(ct) == 0

    def test_range_query_correct(self):
        ct = ConcurrentTree(QuITTree(CFG))
        for k in range(500):
            ct.insert(k, k)
        got = ct.range_query(100, 120)
        assert [k for k, _ in got] == list(range(100, 120))

    def test_contains(self):
        ct = ConcurrentTree(BPlusTree(CFG))
        ct.insert(1, None)
        assert 1 in ct
        assert 2 not in ct


class TestContentionModel:
    def test_profile_validation(self):
        with pytest.raises(ValueError):
            OperationProfile(service_time=0, serial_fraction=0.5)
        with pytest.raises(ValueError):
            OperationProfile(service_time=1e-6, serial_fraction=1.5)

    def test_throughput_rejects_bad_threads(self):
        p = OperationProfile(1e-6, 0.1)
        with pytest.raises(ValueError):
            throughput(p, 0)

    def test_fully_parallel_scales_linearly(self):
        p = OperationProfile(service_time=1e-6, serial_fraction=0.0)
        assert throughput(p, 4) == pytest.approx(4e6)

    def test_fully_serial_is_flat(self):
        p = OperationProfile(service_time=1e-6, serial_fraction=1.0)
        assert throughput(p, 1) == throughput(p, 16) == pytest.approx(1e6)

    def test_monotone_in_threads(self):
        p = OperationProfile(service_time=1e-6, serial_fraction=0.3)
        curve = throughput_curve(p)
        values = list(curve.values())
        assert all(a <= b * 1.0001 for a, b in zip(values, values[1:]))

    def test_quit_insert_ceiling_above_btree(self):
        # Fig. 13a's mechanism: QuIT's higher fast fraction gives a
        # smaller serialized share, hence a higher saturation ceiling.
        same_service = 2e-6
        quit_p = insert_profile(same_service, fast_fraction=0.95)
        btree_p = insert_profile(same_service, fast_fraction=0.0)
        assert throughput(quit_p, 16) > 1.5 * throughput(btree_p, 16)

    def test_lookup_scaling_near_linear_until_8(self):
        p = lookup_profile(1e-6)
        curve = throughput_curve(p)
        assert curve[8] > 6.5 * curve[1] / 1.0

    def test_insert_profile_validation(self):
        with pytest.raises(ValueError):
            insert_profile(1e-6, fast_fraction=1.5)
