"""Basic B+-tree operations across every variant (they must all behave
extensionally identically to a sorted-dict oracle)."""

import pytest

from repro.core import BPlusTree, TreeConfig

from conftest import shuffled_keys, validate_tree


class TestEmptyTree:
    def test_len(self, small_config, any_tree_class):
        tree = any_tree_class(small_config)
        assert len(tree) == 0

    def test_get_default(self, small_config, any_tree_class):
        tree = any_tree_class(small_config)
        assert tree.get(42) is None
        assert tree.get(42, "missing") == "missing"

    def test_contains(self, small_config, any_tree_class):
        tree = any_tree_class(small_config)
        assert 42 not in tree

    def test_range_query(self, small_config, any_tree_class):
        tree = any_tree_class(small_config)
        assert tree.range_query(0, 100) == []

    def test_min_max_none(self, small_config, any_tree_class):
        tree = any_tree_class(small_config)
        assert tree.min_key() is None
        assert tree.max_key() is None

    def test_height_one(self, small_config, any_tree_class):
        assert any_tree_class(small_config).height == 1

    def test_validates(self, small_config, any_tree_class):
        any_tree_class(small_config).validate()


class TestInsertAndGet:
    def test_single(self, small_config, any_tree_class):
        tree = any_tree_class(small_config)
        tree.insert(5, "five")
        assert len(tree) == 1
        assert tree.get(5) == "five"
        assert 5 in tree

    def test_sorted_ingest(self, small_config, any_tree_class):
        tree = any_tree_class(small_config)
        for k in range(500):
            tree.insert(k, k * 2)
        assert len(tree) == 500
        assert list(tree.keys()) == list(range(500))
        validate_tree(tree)

    def test_reverse_ingest(self, small_config, any_tree_class):
        tree = any_tree_class(small_config)
        for k in reversed(range(500)):
            tree.insert(k, k)
        assert list(tree.keys()) == list(range(500))
        validate_tree(tree)

    def test_shuffled_ingest(self, small_config, any_tree_class):
        tree = any_tree_class(small_config)
        keys = shuffled_keys(800, seed=3)
        for k in keys:
            tree.insert(k, -k)
        assert len(tree) == 800
        for k in keys[::37]:
            assert tree.get(k) == -k
        validate_tree(tree)

    def test_upsert_overwrites(self, small_config, any_tree_class):
        tree = any_tree_class(small_config)
        for k in range(100):
            tree.insert(k, "old")
        for k in range(100):
            tree.insert(k, "new")
        assert len(tree) == 100
        assert all(v == "new" for _, v in tree.items())
        validate_tree(tree)

    def test_negative_and_sparse_keys(self, small_config, any_tree_class):
        tree = any_tree_class(small_config)
        keys = [-500, -3, 0, 7, 10_000, 999_999_999]
        for k in keys:
            tree.insert(k, k)
        assert list(tree.keys()) == sorted(keys)

    def test_none_value_is_storable(self, small_config, any_tree_class):
        tree = any_tree_class(small_config)
        tree.insert(1, None)
        assert 1 in tree
        assert tree.get(1, "default") is None

    def test_min_max(self, small_config, any_tree_class):
        tree = any_tree_class(small_config)
        for k in [5, 1, 9, 3]:
            tree.insert(k, k)
        assert tree.min_key() == 1
        assert tree.max_key() == 9

    def test_height_grows(self, small_config):
        tree = BPlusTree(small_config)
        for k in range(1000):
            tree.insert(k, k)
        assert tree.height >= 3
        validate_tree(tree)


class TestRangeQuery:
    @pytest.fixture
    def loaded(self, small_config, any_tree_class):
        tree = any_tree_class(small_config)
        for k in shuffled_keys(300, seed=1):
            tree.insert(k, k * 10)
        return tree

    def test_half_open_semantics(self, loaded):
        out = loaded.range_query(10, 20)
        assert [k for k, _ in out] == list(range(10, 20))

    def test_values_come_along(self, loaded):
        out = loaded.range_query(5, 8)
        assert out == [(5, 50), (6, 60), (7, 70)]

    def test_empty_range(self, loaded):
        assert loaded.range_query(20, 20) == []
        assert loaded.range_query(20, 10) == []

    def test_unbounded_below(self, loaded):
        out = loaded.range_query(-100, 3)
        assert [k for k, _ in out] == [0, 1, 2]

    def test_beyond_max(self, loaded):
        out = loaded.range_query(295, 10_000)
        assert [k for k, _ in out] == list(range(295, 300))

    def test_full_scan(self, loaded):
        out = loaded.range_query(-1, 10_000)
        assert [k for k, _ in out] == list(range(300))

    def test_count_range(self, loaded):
        assert loaded.count_range(0, 300) == 300
        assert loaded.count_range(100, 150) == 50

    def test_counts_leaf_accesses(self, loaded):
        before = loaded.stats.leaf_accesses
        loaded.range_query(0, 100)
        touched = loaded.stats.leaf_accesses - before
        # 100 keys over capacity-8 leaves: at least 8 leaves touched.
        assert touched >= 100 // 8


class TestIteration:
    def test_items_sorted(self, small_config, any_tree_class):
        tree = any_tree_class(small_config)
        for k in shuffled_keys(200, seed=9):
            tree.insert(k, k)
        assert [k for k, _ in tree.items()] == list(range(200))

    def test_leaves_chain_covers_all(self, small_config, any_tree_class):
        tree = any_tree_class(small_config)
        for k in range(100):
            tree.insert(k, k)
        total = sum(leaf.size for leaf in tree.leaves())
        assert total == 100

    def test_head_and_tail(self, small_config, any_tree_class):
        tree = any_tree_class(small_config)
        for k in shuffled_keys(100, seed=2):
            tree.insert(k, k)
        assert tree.head_leaf.min_key == 0
        assert tree.tail_leaf.max_key == 99


class TestStatsAccounting:
    def test_classical_tree_only_top_inserts(self, small_config):
        tree = BPlusTree(small_config)
        for k in range(100):
            tree.insert(k, k)
        assert tree.stats.top_inserts == 100
        assert tree.stats.fast_inserts == 0

    def test_point_lookup_counts(self, small_config):
        tree = BPlusTree(small_config)
        for k in range(100):
            tree.insert(k, k)
        tree.get(50)
        assert tree.stats.point_lookups == 1
        assert tree.stats.node_accesses >= tree.height

    def test_fastpath_sorted_all_fast(self, small_config, fastpath_tree_class):
        tree = fastpath_tree_class(small_config)
        for k in range(1000):
            tree.insert(k, k)
        # Fully sorted data: every insert takes the fast path.
        assert tree.stats.fast_insert_fraction == 1.0


class TestMemoryAccounting:
    def test_occupancy_sorted_classical_half(self, small_config):
        tree = BPlusTree(small_config)
        for k in range(1000):
            tree.insert(k, k)
        occ = tree.occupancy()
        # Right-deep 50% splits leave every leaf about half full.
        assert 0.45 <= occ.avg_occupancy <= 0.6

    def test_memory_bytes_positive_and_monotone(self, small_config):
        tree = BPlusTree(small_config)
        tree.insert(1, 1)
        small = tree.memory_bytes()
        for k in range(2, 1000):
            tree.insert(k, k)
        assert tree.memory_bytes() > small
