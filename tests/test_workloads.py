"""Tests for workload builders (generators, queries, stocks)."""

import numpy as np
import pytest

from repro.sortedness import kl_sortedness, running_max_violations
from repro.workloads import (
    NIFTY_SPEC,
    SPXUSD_SPEC,
    InstrumentSpec,
    PAPER_SELECTIVITIES,
    SegmentSpec,
    alternating_stress_stream,
    closing_prices,
    instrument_keys,
    mixed_selectivity_ranges,
    negative_lookups,
    point_lookups,
    range_queries,
    scrambled_stream,
    segmented_stream,
    sorted_stream,
    to_index_keys,
)


class TestSegmentedStream:
    def test_empty(self):
        assert len(segmented_stream([])) == 0

    def test_covers_domain(self):
        stream = segmented_stream(
            [SegmentSpec(1000, 0.0), SegmentSpec(1000, 1.0)], seed=1
        )
        assert sorted(stream.tolist()) == list(range(2000))

    def test_segments_have_requested_sortedness(self):
        stream = segmented_stream(
            [SegmentSpec(2000, 0.0), SegmentSpec(2000, 1.0)], seed=2
        )
        first = kl_sortedness(stream[:2000].tolist())
        second = kl_sortedness(stream[2000:].tolist())
        assert first.k == 0
        assert second.k_fraction > 0.9

    def test_overall_upward_trend(self):
        stream = segmented_stream(
            [SegmentSpec(500, 0.1), SegmentSpec(500, 0.1)], seed=3
        )
        # Every key of segment 2 exceeds every key of segment 1.
        assert stream[:500].max() < stream[500:].min()


class TestAlternatingStress:
    def test_permutation_and_length(self):
        stream = alternating_stress_stream(10_000, 5, seed=4)
        assert sorted(stream.tolist()) == list(range(10_000))

    def test_rejects_zero_segments(self):
        with pytest.raises(ValueError):
            alternating_stress_stream(100, 0)

    def test_alternation(self):
        stream = alternating_stress_stream(
            10_000, 5, near_k=0.10, scrambled_k=1.0, seed=5
        )
        per = 2000
        ks = [
            kl_sortedness(stream[i * per:(i + 1) * per].tolist()).k_fraction
            for i in range(5)
        ]
        assert ks[0] < 0.2 and ks[2] < 0.2 and ks[4] < 0.2
        assert ks[1] > 0.8 and ks[3] > 0.8


class TestSimpleStreams:
    def test_sorted_stream(self):
        s = sorted_stream(100, key_start=10, key_step=2)
        assert s[0] == 10 and s[-1] == 208
        assert len(s) == 100

    def test_scrambled_stream(self):
        s = scrambled_stream(1000, seed=6)
        assert sorted(s.tolist()) == list(range(1000))
        assert kl_sortedness(s.tolist()).k_fraction > 0.9


class TestQueries:
    def test_point_lookups_only_existing(self):
        existing = np.array([5, 10, 15])
        targets = point_lookups(existing, 100, seed=1)
        assert set(targets.tolist()) <= {5, 10, 15}
        assert len(targets) == 100

    def test_point_lookups_rejects_empty(self):
        with pytest.raises(ValueError):
            point_lookups(np.array([]), 5)

    def test_negative_lookups_avoid_existing(self):
        existing = set(range(100))
        targets = negative_lookups(0, 99, 50, existing=existing, seed=2)
        assert not (set(targets.tolist()) & existing)

    def test_range_queries_width(self):
        ranges = range_queries(0, 100_000, 0.01, 20, seed=3)
        assert len(ranges) == 20
        assert all(hi - lo == 1000 for lo, hi in ranges)
        assert all(0 <= lo and hi <= 100_001 for lo, hi in ranges)

    def test_range_queries_validation(self):
        with pytest.raises(ValueError):
            range_queries(0, 100, 0.0, 5)
        with pytest.raises(ValueError):
            range_queries(100, 100, 0.1, 5)

    def test_mixed_selectivities(self):
        by_sel = mixed_selectivity_ranges(0, 10_000, 5)
        assert set(by_sel) == set(PAPER_SELECTIVITIES)
        assert all(len(v) == 5 for v in by_sel.values())


class TestStocks:
    def _small(self, spec, n=5000):
        from dataclasses import replace

        return replace(spec, n=n)

    @pytest.mark.parametrize("spec", [NIFTY_SPEC, SPXUSD_SPEC])
    def test_prices_positive_and_trending(self, spec):
        prices = closing_prices(self._small(spec))
        assert (prices > 0).all()
        # Overall upward drift: the last decile averages above the first.
        assert prices[-500:].mean() > prices[:500].mean() * 1.2

    def test_prices_quantized_to_tick(self):
        spec = self._small(NIFTY_SPEC)
        prices = closing_prices(spec)
        ticks = prices / spec.tick
        assert np.allclose(ticks, np.round(ticks))

    def test_index_keys_unique_and_price_ordered(self):
        spec = self._small(NIFTY_SPEC)
        prices = closing_prices(spec)
        keys = to_index_keys(prices, spec.tick)
        assert len(set(keys.tolist())) == len(keys)
        # Key order must agree with price order for distinct prices.
        i, j = 10, 4000
        if prices[i] < prices[j]:
            assert keys[i] < keys[j]

    def test_near_sortedness(self):
        keys = instrument_keys(self._small(NIFTY_SPEC, n=20_000))
        frac = running_max_violations(keys.tolist()) / len(keys)
        # Near-sorted: mostly ascending with local disorder.
        assert frac < 0.6

    def test_rejects_too_long_series(self):
        with pytest.raises(ValueError):
            to_index_keys(np.ones(1 << 25), 0.05)

    def test_rejects_empty_spec(self):
        with pytest.raises(ValueError):
            closing_prices(InstrumentSpec(name="X", n=0))

    def test_deterministic(self):
        a = closing_prices(self._small(SPXUSD_SPEC))
        b = closing_prices(self._small(SPXUSD_SPEC))
        assert np.array_equal(a, b)
