"""Admission-control tests: unit behavior of the controller plus the
overload satellite — a saturating client swarm must observe shedding,
the in-flight budget must hold (``net_inflight_max``), and every acked
response must survive a post-kill recovery."""

import asyncio
import threading
import time

import pytest

from repro.core import DurableTree, TreeConfig
from repro.core.quit_tree import QuITTree
from repro.net import (
    BackgroundServer,
    QuitClient,
    NetError,
)
from repro.net.admission import (
    AdmissionController,
    QueueDeadlineError,
    ServerStats,
    ShedError,
)

CFG = TreeConfig(leaf_capacity=8, internal_capacity=8)


def run(coro):
    return asyncio.run(coro)


class TestAdmissionController:
    def _ctl(self, **kw):
        stats = ServerStats()
        kw.setdefault("max_inflight", 2)
        kw.setdefault("queue_high_water", 2)
        kw.setdefault("queue_wait", 0.05)
        return AdmissionController(stats=stats, **kw), stats

    def test_admit_and_release(self):
        async def go():
            ctl, stats = self._ctl()
            await ctl.admit(time.monotonic() + 1.0)
            assert ctl.inflight == 1
            ctl.release()
            assert ctl.inflight == 0
            assert stats.net_inflight_max == 1
        run(go())

    def test_inflight_budget_blocks_then_sheds(self):
        async def go():
            ctl, stats = self._ctl()
            await ctl.admit(time.monotonic() + 1.0)
            await ctl.admit(time.monotonic() + 1.0)
            # Budget full; the queue deadline (0.05s) trips with budget
            # left -> shed, not queue-forever.
            with pytest.raises(ShedError):
                await ctl.admit(time.monotonic() + 1.0)
            assert stats.net_sheds == 1
            assert stats.net_queue_waits == 1
        run(go())

    def test_expired_budget_is_deadline_not_shed(self):
        async def go():
            ctl, stats = self._ctl()
            with pytest.raises(QueueDeadlineError):
                await ctl.admit(time.monotonic() - 0.001)
            assert stats.net_deadline_refusals == 1
        run(go())

    def test_queue_past_high_water_sheds_fast(self):
        async def go():
            ctl, stats = self._ctl(queue_high_water=0)
            await ctl.admit(time.monotonic() + 1.0)
            await ctl.admit(time.monotonic() + 1.0)
            start = time.monotonic()
            with pytest.raises(ShedError):
                await ctl.admit(time.monotonic() + 1.0)
            # Shed before any queue wait: refusal is cheap.
            assert time.monotonic() - start < 0.05
        run(go())

    def test_draining_sheds_with_reason(self):
        async def go():
            ctl, stats = self._ctl()
            ctl.draining = True
            with pytest.raises(ShedError) as exc:
                await ctl.admit(time.monotonic() + 1.0)
            assert exc.value.reason == "draining"
        run(go())

    def test_advisory_grows_with_backlog(self):
        async def go():
            ctl, _ = self._ctl(max_inflight=4)
            empty = ctl.advisory()
            await ctl.admit(time.monotonic() + 1.0)
            await ctl.admit(time.monotonic() + 1.0)
            assert ctl.advisory() > empty
        run(go())

    def test_bad_config_refused(self):
        with pytest.raises(ValueError):
            AdmissionController(max_inflight=0, stats=ServerStats())
        with pytest.raises(ValueError):
            AdmissionController(queue_high_water=-1, stats=ServerStats())


class TestOverload:
    """Satellite: saturate a tiny server with a client swarm."""

    MAX_INFLIGHT = 4

    def _swarm(self, port, threads, per_thread, observed):
        def worker(tid):
            sheds = 0
            acked = []
            client = QuitClient(
                "127.0.0.1", port, deadline=8.0,
            )
            for i in range(per_thread):
                key = tid * 10_000 + i
                try:
                    ack = client.insert_acked(key, key)
                    acked.append((key, key, ack.applied or ack.deduped))
                except NetError:
                    sheds += 1
            client.close()
            observed[tid] = (acked, sheds)

        workers = [
            threading.Thread(target=worker, args=(tid,))
            for tid in range(threads)
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join(120.0)

    def test_swarm_sheds_but_never_exceeds_budget(self, tmp_path):
        durable = DurableTree(
            QuITTree(CFG), tmp_path / "state", fsync="group"
        )
        observed = {}
        with BackgroundServer(
            durable,
            max_inflight=self.MAX_INFLIGHT,
            queue_high_water=2,
            queue_wait=0.02,
        ) as bg:
            self._swarm(bg.port, threads=12, per_thread=40, observed=observed)
            stats = bg.stats
            # The budget held: concurrency never exceeded the limit.
            assert 1 <= stats.net_inflight_max <= self.MAX_INFLIGHT
            # The slow path bit: shedding was observed at the wire
            # (clients retried through most of it; the counter is the
            # authoritative witness).
            assert stats.net_sheds > 0
            # The queue high water held too: admission state lives on
            # the event-loop thread, so check-and-count is atomic.
            assert stats.net_queued_max <= 2
            acked = [a for acks, _ in observed.values() for a in acks]
            assert acked, "swarm acked nothing; overload setup is broken"
            # Kill the server AND the process's group flusher: every
            # acked response must still be on disk.
            bg.kill()
        durable.abort()
        recovered, _ = DurableTree.recover(tmp_path / "state", QuITTree, CFG)
        try:
            for key, value, _ in acked:
                assert recovered.get(key) == value, (
                    f"acked write {key} lost after kill"
                )
        finally:
            recovered.close()
