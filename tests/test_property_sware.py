"""Property-based tests for the SWARE stack: the SA-B+-tree must behave
as a dict under arbitrary operation interleavings, in every buffer
configuration."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.core import TreeConfig
from repro.sware import SABPlusTree, SortednessBuffer

CFG = TreeConfig(leaf_capacity=8, internal_capacity=8)


@settings(max_examples=40, deadline=None)
@given(
    keys=st.lists(st.integers(-5000, 5000), max_size=300),
    buffer_capacity=st.integers(4, 64),
    page_capacity=st.integers(2, 32),
)
def test_sa_tree_matches_dict(keys, buffer_capacity, page_capacity):
    sa = SABPlusTree(
        CFG, buffer_capacity=buffer_capacity, page_capacity=page_capacity
    )
    oracle = {}
    for i, k in enumerate(keys):
        sa.insert(k, i)
        oracle[k] = i
    assert list(sa.items()) == sorted(oracle.items())
    for k in list(oracle)[:40]:
        assert sa.get(k) == oracle[k]


@settings(max_examples=30, deadline=None)
@given(
    keys=st.lists(st.integers(0, 1000), max_size=200),
    crack=st.booleans(),
    interp=st.booleans(),
)
def test_buffer_options_are_equivalent(keys, crack, interp):
    buf = SortednessBuffer(
        512, page_capacity=16, crack_on_read=crack,
        use_interpolation=interp,
    )
    latest = {}
    for i, k in enumerate(keys):
        buf.append(k, i)
        latest[k] = i
    for k in set(keys):
        assert buf.get(k) == (True, latest[k])
    assert buf.get(99_999) == (False, None)
    drained = buf.drain()
    assert drained == sorted(latest.items())


class SwareMachine(RuleBasedStateMachine):
    """Arbitrary insert/delete/get/range/flush interleavings vs a dict."""

    def __init__(self):
        super().__init__()
        self.sa = None
        self.oracle = {}
        self.step = 0

    @initialize(
        buffer_capacity=st.integers(4, 48),
        crack=st.booleans(),
    )
    def setup(self, buffer_capacity, crack):
        self.sa = SABPlusTree(
            CFG, buffer_capacity=buffer_capacity, page_capacity=8,
            crack_on_read=crack,
        )
        self.oracle = {}
        self.step = 0

    @rule(key=st.integers(-200, 200))
    def insert(self, key):
        self.step += 1
        self.sa.insert(key, self.step)
        self.oracle[key] = self.step

    @rule(key=st.integers(-200, 200))
    def delete(self, key):
        assert self.sa.delete(key) == (key in self.oracle)
        self.oracle.pop(key, None)

    @rule(key=st.integers(-200, 200))
    def lookup(self, key):
        assert self.sa.get(key, "absent") == self.oracle.get(
            key, "absent"
        )

    @rule(lo=st.integers(-200, 200), width=st.integers(0, 60))
    def range_scan(self, lo, width):
        got = self.sa.range_query(lo, lo + width)
        expected = sorted(
            (k, v) for k, v in self.oracle.items()
            if lo <= k < lo + width
        )
        assert got == expected

    @rule()
    def flush(self):
        self.sa.flush()

    @invariant()
    def contents_match(self):
        if self.sa is not None:
            assert list(self.sa.items()) == sorted(self.oracle.items())


TestSwareMachine = SwareMachine.TestCase
TestSwareMachine.settings = settings(
    max_examples=20,
    stateful_step_count=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
