"""Tests for the quit-serve CLI: a real served subprocess with SIGTERM
drain, and the client subcommands against it."""

import io
import os
import re
import signal
import subprocess
import sys
import time

import pytest

from repro.core import DurableTree, QuITTree, TreeConfig
from repro.core.durable import WAL_DIRNAME
from repro.core.wal import segment_paths
from repro.net.cli import main

CFG = TreeConfig(leaf_capacity=8, internal_capacity=8)

posix_only = pytest.mark.skipif(
    os.name != "posix", reason="POSIX signals required"
)


def seed_state(directory, n=120):
    t = DurableTree(QuITTree(CFG), directory)
    t.insert_many([(i, i * 2) for i in range(n)])
    t.close()


def _env():
    env = dict(os.environ)
    repo_src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def spawn_server(directory, *extra):
    """Start ``quit-serve serve`` in a subprocess; return (proc, port)."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.net.cli", "serve", str(directory),
         "--port", "0", "--leaf-capacity", "8", *extra],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=_env(),
    )
    port = None
    deadline = time.time() + 30
    for line in proc.stdout:
        m = re.search(r"on 127\.0\.0\.1:(\d+)", line)
        if m:
            port = int(m.group(1))
        if "serving until SIGTERM/SIGINT" in line:
            break
        assert time.time() < deadline, "serve banner never appeared"
    assert port is not None, "bound port never printed"
    return proc, port


def finish(proc, sig=signal.SIGTERM):
    """Signal the server and collect (returncode, stdout_tail, stderr)."""
    try:
        proc.send_signal(sig)
        remaining, errors = proc.communicate(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    return proc.returncode, remaining, errors


class TestServeDrain:
    @posix_only
    def test_sigterm_drains_checkpoints_exits_zero(self, tmp_path):
        node = tmp_path / "node"
        seed_state(node)
        proc, port = spawn_server(node)
        code, tail, errors = finish(proc, signal.SIGTERM)
        assert code == 0, errors
        assert "graceful drain" in tail
        # Drain checkpointed: snapshot present, WAL truncated.
        assert (node / "snapshot.quit").exists()
        assert segment_paths(node / WAL_DIRNAME) == []
        recovered, report = DurableTree.recover(node, QuITTree, CFG)
        try:
            assert report.clean and report.snapshot_loaded
            assert len(recovered) == 120
        finally:
            recovered.close()

    @posix_only
    def test_sigint_drains_too(self, tmp_path):
        node = tmp_path / "node"
        seed_state(node, n=10)
        proc, port = spawn_server(node)
        code, tail, errors = finish(proc, signal.SIGINT)
        assert code == 0, errors
        assert "graceful drain" in tail

    @posix_only
    def test_drain_settles_inflight_writes(self, tmp_path):
        """Writes accepted before SIGTERM are on disk after exit 0."""
        from repro.net import QuitClient

        node = tmp_path / "node"
        seed_state(node, n=0)
        proc, port = spawn_server(node)
        client = QuitClient("127.0.0.1", port)
        for i in range(50):
            client.insert(i, i * 7)
        client.close()
        code, tail, errors = finish(proc)
        assert code == 0, errors
        recovered, _ = DurableTree.recover(node, QuITTree, CFG)
        try:
            for i in range(50):
                assert recovered.get(i) == i * 7
        finally:
            recovered.close()


class TestClientSubcommands:
    """Drive the client subcommands in-process against a subprocess
    server (one server per class instance keeps this cheap)."""

    @pytest.fixture
    def server(self, tmp_path):
        node = tmp_path / "node"
        seed_state(node, n=5)
        proc, port = spawn_server(node)
        yield f"127.0.0.1:{port}"
        code, _, errors = finish(proc)
        assert code == 0, errors

    def _run(self, *argv):
        out = io.StringIO()
        code = main(list(argv), out=out)
        return code, out.getvalue()

    @posix_only
    def test_put_get_del_round_trip(self, server):
        code, out = self._run("put", server, "42", "'answer'")
        assert code == 0
        assert "applied=True" in out
        code, out = self._run("get", server, "42")
        assert code == 0
        assert out.strip() == "'answer'"
        code, out = self._run("del", server, "42")
        assert code == 0
        assert "existed=True" in out
        code, out = self._run("get", server, "42")
        assert code == 1
        assert "(missing)" in out

    @posix_only
    def test_scan_and_limit(self, server):
        code, out = self._run("scan", server, "0", "5")
        assert code == 0
        assert "(5 item(s))" in out
        code, out = self._run("scan", server, "0", "5", "--limit", "2")
        assert code == 0
        assert "(2 item(s))" in out

    @posix_only
    def test_status_prints_counters(self, server):
        code, out = self._run("status", server)
        assert code == 0
        assert "role" in out
        assert "stats.net_requests" in out
        assert "boot_id" in out

    @posix_only
    def test_string_fallback_values(self, server):
        # A non-literal operand falls back to str (keys must stay
        # comparable with the tree's existing int keys, so the
        # fallback is exercised on the value side).
        code, _ = self._run("put", server, "100", "not-a-literal")
        assert code == 0
        code, out = self._run("get", server, "100")
        assert code == 0
        assert out.strip() == "'not-a-literal'"

    def test_unreachable_server_exits_two(self):
        code, out = self._run(
            "get", "127.0.0.1:1", "--deadline", "0.3", "0"
        )
        assert code == 2
        assert "error:" in out

    def test_bad_address_rejected(self):
        with pytest.raises(SystemExit):
            self._run("get", "no-port-here", "0")


class TestServeWithReplicas:
    @posix_only
    def test_replicated_serve_drains_clean(self, tmp_path):
        from repro.net import QuitClient

        node = tmp_path / "node"
        seed_state(node, n=0)
        proc, port = spawn_server(
            node, "--replicas", "1", "--required-acks", "1",
            "--ack-deadline", "1.0",
        )
        client = QuitClient("127.0.0.1", port)
        for i in range(30):
            client.insert(i, i)
        status = client.status()
        assert status["role"] == "primary"
        client.close()
        code, tail, errors = finish(proc)
        assert code == 0, errors
        assert "graceful drain" in tail
        # The replica directory is a real durability root with the data.
        replica_dir = tmp_path / "node-replicas" / "replica0"
        recovered, _ = DurableTree.recover(replica_dir, QuITTree, CFG)
        try:
            assert len(recovered) == 30
        finally:
            recovered.close()
