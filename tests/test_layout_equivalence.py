"""Layout equivalence: the gapped slot-array leaf layout must be
observationally identical to the classic compact-list layout.

Every variant is driven through random ~1k-op workloads (point inserts,
overwrites, deletes, range queries, point reads) three ways at once —
``layout="gapped"``, ``layout="list"``, and a plain dict oracle — and
every read result must agree.  ``range_query`` uses half-open
``[start, end)`` semantics, which the oracle mirrors.

Also covered: persist round-trips across layouts, typed-array promotion
/ demotion at the leaf level, and crash-recovery property runs with the
gapped layout under the registered failpoints (the durability layer
must not care how leaves store their slots).
"""

import random

import pytest

from repro.core import (
    BPlusTree,
    DurableTree,
    LilBPlusTree,
    PoleBPlusTree,
    QuITTree,
    TailBPlusTree,
    TreeConfig,
)
from repro.core.node import GappedLeafNode, LeafNode, make_leaf

VARIANTS = (
    BPlusTree,
    TailBPlusTree,
    LilBPlusTree,
    PoleBPlusTree,
    QuITTree,
)

KEYSPACE = 600
N_OPS = 1000


def cfg(layout: str) -> TreeConfig:
    return TreeConfig(leaf_capacity=8, internal_capacity=8, layout=layout)


def make_ops(seed: int, n: int = N_OPS) -> list[tuple]:
    rng = random.Random(seed)
    ops = []
    for _ in range(n):
        r = rng.random()
        if r < 0.50:
            ops.append(("insert", rng.randrange(KEYSPACE), rng.randrange(10**6)))
        elif r < 0.65:
            ops.append(("delete", rng.randrange(KEYSPACE)))
        elif r < 0.80:
            ops.append(("get", rng.randrange(KEYSPACE)))
        elif r < 0.95:
            lo = rng.randrange(KEYSPACE)
            ops.append(("range", lo, lo + rng.randrange(80)))
        else:
            ops.append(("items",))
    return ops


class TestRandomWorkloadEquivalence:
    @pytest.mark.parametrize("variant", VARIANTS, ids=lambda v: v.name)
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_gapped_list_and_oracle_agree(self, variant, seed):
        gapped = variant(cfg("gapped"))
        listy = variant(cfg("list"))
        oracle: dict = {}
        for step, op in enumerate(make_ops(seed)):
            tag = (variant.name, seed, step, op)
            if op[0] == "insert":
                _, k, v = op
                gapped.insert(k, v)
                listy.insert(k, v)
                oracle[k] = v
            elif op[0] == "delete":
                _, k = op
                assert gapped.delete(k) == listy.delete(k), tag
                oracle.pop(k, None)
            elif op[0] == "get":
                _, k = op
                expect = oracle.get(k)
                assert gapped.get(k) == expect, tag
                assert listy.get(k) == expect, tag
            elif op[0] == "range":
                _, lo, hi = op
                expect = sorted(
                    (k, v) for k, v in oracle.items() if lo <= k < hi
                )
                assert gapped.range_query(lo, hi) == expect, tag
                assert listy.range_query(lo, hi) == expect, tag
            else:
                expect = sorted(oracle.items())
                assert sorted(gapped.items()) == expect, tag
                assert sorted(listy.items()) == expect, tag
            assert len(gapped) == len(listy) == len(oracle), tag
        # Structural invariants hold for both layouts.  QuIT's variable
        # splits can legally leave under-min-fill leaves (a documented,
        # layout-independent property), so min-fill is not asserted.
        gapped.validate(check_min_fill=False)
        listy.validate(check_min_fill=False)

    @pytest.mark.parametrize("variant", VARIANTS, ids=lambda v: v.name)
    def test_batched_ingest_agrees(self, variant):
        rng = random.Random(99)
        gapped = variant(cfg("gapped"))
        listy = variant(cfg("list"))
        oracle: dict = {}
        for _ in range(40):
            base = rng.randrange(KEYSPACE)
            batch = [
                (base + j, rng.randrange(10**6))
                for j in range(rng.randrange(1, 30))
            ]
            gapped.insert_many(batch)
            listy.insert_many(batch)
            oracle.update(batch)
        assert list(gapped.items()) == list(listy.items()) == sorted(
            oracle.items()
        )


class TestPersistRoundTrip:
    @pytest.mark.parametrize("layout", ["gapped", "list"])
    @pytest.mark.parametrize("version", [1, 2])
    def test_snapshot_round_trip_preserves_entries(
        self, tmp_path, layout, version
    ):
        from repro.core.persist import load_tree, save_tree

        t = QuITTree(cfg(layout))
        rng = random.Random(7)
        for _ in range(500):
            t.insert(rng.randrange(KEYSPACE), rng.randrange(10**6))
        path = tmp_path / "tree.snap"
        save_tree(t, path, version=version)
        back = load_tree(path, QuITTree, config=cfg(layout))
        assert list(back.items()) == list(t.items())
        assert back.layout == layout
        back.validate(check_min_fill=False)

    def test_cross_layout_load(self, tmp_path):
        # A snapshot written by one layout loads under the other: the
        # snapshot format stores entries, not slab internals.
        from repro.core.persist import load_tree, save_tree

        src = BPlusTree(cfg("list"))
        for i in range(300):
            src.insert(i * 3 % KEYSPACE, i)
        path = tmp_path / "tree.snap"
        save_tree(src, path)
        back = load_tree(path, BPlusTree, config=cfg("gapped"))
        assert list(back.items()) == list(src.items())
        assert back.layout == "gapped"
        # The bulk-loaded rebuild promotes int keys to typed slabs.
        assert back.stats.typed_leaves > 0


class TestTypedSlots:
    def test_bulk_load_promotes_int_keys(self):
        t = BPlusTree(TreeConfig(leaf_capacity=64, internal_capacity=64,
                                 layout="gapped"))
        t.bulk_load([(i, i) for i in range(5_000)])
        assert t.stats.typed_leaves > 0
        assert list(t.items()) == [(i, i) for i in range(5_000)]

    def test_demotion_on_nonconforming_key(self):
        t = BPlusTree(TreeConfig(leaf_capacity=64, internal_capacity=64,
                                 layout="gapped"))
        t.bulk_load([(i, i) for i in range(1_000)])
        t.insert(2**70, "big")  # > int64: typed slab must demote
        assert t.stats.typed_demotions >= 1
        assert t.get(2**70) == "big"
        t.validate()

    def test_string_keys_stay_object_lists(self):
        t = BPlusTree(cfg("gapped"))
        words = [f"k{i:04d}" for i in range(300)]
        random.Random(3).shuffle(words)
        for w in words:
            t.insert(w, w)
        assert [k for k, _ in t.items()] == sorted(words)
        leaf = t.head_leaf
        while leaf is not None:
            assert not leaf.typed
            leaf = leaf.next

    def test_leaf_level_gap_claims_count(self):
        from repro.core.stats import TreeStats

        stats = TreeStats()
        leaf = make_leaf("gapped", 16, stats)
        assert isinstance(leaf, GappedLeafNode)
        for k in (10, 20, 30, 40):
            leaf.insert_entry(k, None)
        assert stats.gap_hits == 0  # appends are never counted
        leaf.insert_entry(25, None)  # migrate cursor mid-leaf
        leaf.insert_entry(26, None)  # claim at the migrated cursor
        assert stats.gap_hits >= 1
        assert leaf.keys == [10, 20, 25, 26, 30, 40]

    def test_list_layout_unchanged(self):
        leaf = make_leaf("list", 16)
        assert type(leaf) is LeafNode


class TestCrashRecoveryGapped:
    """The durability layer over gapped leaves: acknowledged writes
    survive a mid-workload crash at registered WAL/checkpoint
    failpoints.  (The full per-failpoint sweep lives in
    tests/test_crash_recovery_property.py; this asserts the gapped
    layout changes nothing about that contract.)"""

    GAPPED_CFG = TreeConfig(
        leaf_capacity=8, internal_capacity=8, layout="gapped"
    )

    @pytest.mark.parametrize(
        "failpoint",
        ["wal.before_fsync", "wal.after_append", "snapshot.after_tmp_write"],
    )
    def test_failpoint_crash_recovers_acked_state(self, tmp_path, failpoint):
        from repro.testing import SimulatedCrash, failpoints

        rng = random.Random(hash(failpoint) % 2**31)
        acked: dict = {}
        inflight = None
        tree = DurableTree(
            QuITTree(self.GAPPED_CFG), tmp_path, segment_bytes=512
        )
        assert tree.layout == "gapped"
        try:
            with failpoints.active(
                failpoint, mode="crash", hits_before=5
            ) as state:
                for step in range(600):
                    if step and step % 50 == 0:
                        tree.checkpoint()  # exercises snapshot.* points
                    k = rng.randrange(KEYSPACE)
                    if rng.random() < 0.75:
                        v = rng.randrange(10**6)
                        inflight = ("insert", k, v)
                        tree.insert(k, v)
                        acked[k] = v
                    else:
                        inflight = ("delete", k)
                        tree.delete(k)
                        acked.pop(k, None)
                    inflight = None
        except SimulatedCrash:
            pass
        assert state.fired == 1, (
            f"{failpoint} never fired — the workload does not cover it"
        )
        recovered, report = DurableTree.recover(
            tmp_path, QuITTree, self.GAPPED_CFG
        )
        try:
            assert recovered.layout == "gapped"
            got = dict(recovered.tree.items())
            # Log-then-apply: exactly the acknowledged history, plus at
            # most the single op that was in flight at the crash.
            allowed = [acked]
            if inflight is not None:
                extra = dict(acked)
                if inflight[0] == "insert":
                    extra[inflight[1]] = inflight[2]
                else:
                    extra.pop(inflight[1], None)
                allowed.append(extra)
            assert any(got == s for s in allowed), (
                failpoint,
                len(got),
                len(acked),
                inflight,
            )
            assert recovered.check(check_min_fill=False) == []
            # The recovered tree keeps working through its fast path.
            recovered.insert(10**9, "post-recovery")
            assert recovered.get(10**9) == "post-recovery"
        finally:
            recovered.close()
