"""Tests for the Bε-tree baseline (§6 related work)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.betree import BeTree, BeTreeConfig

SMALL = BeTreeConfig(leaf_capacity=8, fanout=4, buffer_capacity=12)


def make_tree(config=SMALL):
    return BeTree(config)


class TestConfig:
    @pytest.mark.parametrize("kwargs", [
        dict(leaf_capacity=2),
        dict(fanout=1),
        dict(buffer_capacity=0),
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            BeTreeConfig(**kwargs)


class TestBasicOps:
    def test_insert_get(self):
        t = make_tree()
        t.insert(5, "five")
        assert t.get(5) == "five"
        assert t.get(6, "d") == "d"
        assert 5 in t and 6 not in t

    def test_upsert(self):
        t = make_tree()
        t.insert(1, "a")
        t.insert(1, "b")
        assert t.get(1) == "b"
        assert len(t) == 1

    def test_buffered_write_visible_immediately(self):
        # Messages still in buffers must serve reads (newest wins).
        t = make_tree()
        for k in range(100):
            t.insert(k, k)
        t.insert(3, "fresh")
        assert t.get(3) == "fresh"

    def test_delete_tombstone(self):
        t = make_tree()
        for k in range(200):
            t.insert(k, k)
        t.delete(50)
        assert t.get(50) is None
        assert 50 not in t
        t.delete(50)  # idempotent
        assert len(t) == 199

    def test_delete_of_buffered_insert(self):
        t = make_tree()
        for k in range(100):
            t.insert(k, k)
        t.insert(500, "x")
        t.delete(500)
        assert 500 not in t

    def test_sorted_ingest(self):
        t = make_tree()
        for k in range(2000):
            t.insert(k, k * 2)
        t.validate()
        assert len(t) == 2000
        assert t.get(1234) == 2468

    def test_scrambled_ingest(self):
        t = make_tree()
        keys = list(range(2000))
        random.Random(1).shuffle(keys)
        for k in keys:
            t.insert(k, -k)
        t.validate()
        assert list(t.items()) == [(k, -k) for k in range(2000)]

    def test_height_grows(self):
        t = make_tree()
        for k in range(3000):
            t.insert(k, k)
        assert t.height() >= 3


class TestRangeQuery:
    @pytest.fixture
    def tree(self):
        t = make_tree()
        for k in range(0, 500, 2):
            t.insert(k, k)
        return t

    def test_half_open(self, tree):
        got = tree.range_query(10, 20)
        assert got == [(10, 10), (12, 12), (14, 14), (16, 16), (18, 18)]

    def test_sees_buffered_messages(self, tree):
        tree.insert(11, "buffered")
        tree.delete(12)
        got = dict(tree.range_query(10, 14))
        assert got == {10: 10, 11: "buffered"}

    def test_empty_and_reversed(self, tree):
        assert tree.range_query(20, 20) == []
        assert tree.range_query(30, 10) == []


class TestFlushAll:
    def test_flush_preserves_contents(self):
        t = make_tree()
        keys = random.Random(3).sample(range(5000), 1500)
        for k in keys:
            t.insert(k, k)
        before = list(t.items())
        t.flush_all()
        t.validate()
        assert list(t.items()) == before
        # After a checkpoint no internal node buffers messages.
        assert all(not n.buffer for n in t._internal_nodes())


class TestStats:
    def test_amortization_counters(self):
        t = make_tree()
        for k in range(2000):
            t.insert(k, k)
        s = t.stats
        assert s.messages_enqueued == 2000
        assert s.flushes > 0
        assert s.messages_moved > 0

    def test_moves_per_insert_flat_across_sortedness(self):
        cfg = BeTreeConfig(leaf_capacity=32, fanout=8, buffer_capacity=128)
        rates = []
        for label in ("sorted", "scrambled"):
            t = BeTree(cfg)
            keys = list(range(20_000))
            if label == "scrambled":
                random.Random(2).shuffle(keys)
            for k in keys:
                t.insert(k, k)
            rates.append(t.stats.messages_moved / 20_000)
        # §6: the amortization is oblivious to sortedness (within ~2x,
        # vs QuIT's order-of-magnitude swing in traversals).
        assert max(rates) / min(rates) < 2.0


class TestOracleEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(ops=st.lists(
        st.tuples(
            st.sampled_from(["put", "del"]),
            st.integers(0, 300),
            st.integers(),
        ),
        max_size=400,
    ))
    def test_matches_dict(self, ops):
        t = make_tree()
        oracle = {}
        for op, key, value in ops:
            if op == "put":
                t.insert(key, value)
                oracle[key] = value
            else:
                t.delete(key)
                oracle.pop(key, None)
        assert list(t.items()) == sorted(oracle.items())
        t.validate()

    def test_long_mixed_run(self):
        t = make_tree()
        oracle = {}
        rng = random.Random(11)
        for step in range(8000):
            k = rng.randrange(1000)
            if rng.random() < 0.7:
                t.insert(k, step)
                oracle[k] = step
            else:
                t.delete(k)
                oracle.pop(k, None)
            if step % 1000 == 0:
                t.validate()
                probe = rng.randrange(1000)
                assert t.get(probe) == oracle.get(probe)
        assert list(t.items()) == sorted(oracle.items())
