"""Tests for the quit-durability CLI."""

import io

import pytest

from repro.bench.durability_cli import main
from repro.core import DurableTree, QuITTree, TreeConfig
from repro.core.durable import WAL_DIRNAME
from repro.core.wal import segment_paths

CFG = TreeConfig(leaf_capacity=8, internal_capacity=8)


def seed_state(directory, n=200, checkpoint=True, extra=50):
    t = DurableTree(QuITTree(CFG), directory)
    t.insert_many([(i, i) for i in range(n)])
    if checkpoint:
        t.checkpoint()
    for i in range(extra):
        t.insert(n + i, i)
    t.close()
    return t


class TestRecover:
    def test_clean_state_exits_zero(self, tmp_path, capsys):
        seed_state(tmp_path)
        assert main(["recover", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "recovered 250 entries" in out
        assert "clean                    True" in out

    def test_damaged_state_exits_one_with_report(self, tmp_path, capsys):
        seed_state(tmp_path)
        segs = segment_paths(tmp_path / WAL_DIRNAME)
        segs[-1].write_bytes(segs[-1].read_bytes()[:-4])
        assert main(["recover", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "torn tail                True" in out
        assert "recovered 249 entries" in out

    def test_no_scrub_flag(self, tmp_path, capsys):
        seed_state(tmp_path)
        assert main(["recover", str(tmp_path), "--no-scrub"]) == 0
        assert "scrub" not in capsys.readouterr().out


class TestCheckpointAndScrub:
    def test_checkpoint_truncates_wal(self, tmp_path, capsys):
        seed_state(tmp_path)
        assert segment_paths(tmp_path / WAL_DIRNAME)
        assert main(["checkpoint", str(tmp_path)]) == 0
        assert "checkpointed 250 entries" in capsys.readouterr().out
        assert segment_paths(tmp_path / WAL_DIRNAME) == []
        # The snapshot now carries everything by itself.
        assert main(["recover", str(tmp_path)]) == 0
        assert "snapshot entries         250" in capsys.readouterr().out

    def test_scrub_reports_clean(self, tmp_path, capsys):
        seed_state(tmp_path)
        assert main(["scrub", str(tmp_path)]) == 0
        assert "0 issue(s), 0 repair(s)" in capsys.readouterr().out

    def test_variant_choice(self, tmp_path, capsys):
        seed_state(tmp_path)
        assert main(["scrub", str(tmp_path), "--variant", "B+-tree"]) == 0
        assert "B+-tree:" in capsys.readouterr().out


class TestBench:
    def test_bench_prints_timings(self):
        out = io.StringIO()
        code = main(
            ["bench", "--n", "2000", "--wal-ops", "200",
             "--leaf-capacity", "32"],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "checkpoint (v2 snapshot)" in text
        assert "recovery (snapshot+replay)" in text
        assert "recovered 2200 entries (200 WAL records replayed)" in text
        assert "clean=True" in text

    def test_bench_honors_directory_and_fsync(self, tmp_path):
        out = io.StringIO()
        code = main(
            ["bench", "--n", "500", "--wal-ops", "50",
             "--fsync", "always", "--variant", "tail-B+-tree",
             "--directory", str(tmp_path / "state")],
            out=out,
        )
        assert code == 0
        assert (tmp_path / "state" / "snapshot.quit").exists()
        # The state the bench left behind is a valid durability dir.
        assert main(["recover", str(tmp_path / "state")], out=io.StringIO()) == 0
