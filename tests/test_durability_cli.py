"""Tests for the quit-durability CLI."""

import io

import pytest

from repro.bench.durability_cli import main
from repro.core import DurableTree, QuITTree, TreeConfig
from repro.core.durable import WAL_DIRNAME
from repro.core.wal import segment_paths

CFG = TreeConfig(leaf_capacity=8, internal_capacity=8)


def seed_state(directory, n=200, checkpoint=True, extra=50):
    t = DurableTree(QuITTree(CFG), directory)
    t.insert_many([(i, i) for i in range(n)])
    if checkpoint:
        t.checkpoint()
    for i in range(extra):
        t.insert(n + i, i)
    t.close()
    return t


class TestRecover:
    def test_clean_state_exits_zero(self, tmp_path, capsys):
        seed_state(tmp_path)
        assert main(["recover", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "recovered 250 entries" in out
        assert "clean                    True" in out

    def test_damaged_state_exits_one_with_report(self, tmp_path, capsys):
        seed_state(tmp_path)
        segs = segment_paths(tmp_path / WAL_DIRNAME)
        segs[-1].write_bytes(segs[-1].read_bytes()[:-4])
        assert main(["recover", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "torn tail                True" in out
        assert "recovered 249 entries" in out

    def test_no_scrub_flag(self, tmp_path, capsys):
        seed_state(tmp_path)
        assert main(["recover", str(tmp_path), "--no-scrub"]) == 0
        assert "scrub" not in capsys.readouterr().out


class TestCheckpointAndScrub:
    def test_checkpoint_truncates_wal(self, tmp_path, capsys):
        seed_state(tmp_path)
        assert segment_paths(tmp_path / WAL_DIRNAME)
        assert main(["checkpoint", str(tmp_path)]) == 0
        assert "checkpointed 250 entries" in capsys.readouterr().out
        assert segment_paths(tmp_path / WAL_DIRNAME) == []
        # The snapshot now carries everything by itself.
        assert main(["recover", str(tmp_path)]) == 0
        assert "snapshot entries         250" in capsys.readouterr().out

    def test_scrub_reports_clean(self, tmp_path, capsys):
        seed_state(tmp_path)
        assert main(["scrub", str(tmp_path)]) == 0
        assert "0 issue(s), 0 repair(s)" in capsys.readouterr().out

    def test_variant_choice(self, tmp_path, capsys):
        seed_state(tmp_path)
        assert main(["scrub", str(tmp_path), "--variant", "B+-tree"]) == 0
        assert "B+-tree:" in capsys.readouterr().out


class TestBench:
    def test_bench_prints_timings(self):
        out = io.StringIO()
        code = main(
            ["bench", "--n", "2000", "--wal-ops", "200",
             "--leaf-capacity", "32"],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "checkpoint (v2 snapshot)" in text
        assert "recovery (snapshot+replay)" in text
        assert "recovered 2200 entries (200 WAL records replayed)" in text
        assert "clean=True" in text

    def test_bench_honors_directory_and_fsync(self, tmp_path):
        out = io.StringIO()
        code = main(
            ["bench", "--n", "500", "--wal-ops", "50",
             "--fsync", "always", "--variant", "tail-B+-tree",
             "--directory", str(tmp_path / "state")],
            out=out,
        )
        assert code == 0
        assert (tmp_path / "state" / "snapshot.quit").exists()
        # The state the bench left behind is a valid durability dir.
        assert main(["recover", str(tmp_path / "state")], out=io.StringIO()) == 0

class TestReplicateCommand:
    def test_replicate_streams_and_checkpoints(self, tmp_path):
        out = io.StringIO()
        code = main(
            ["replicate", str(tmp_path / "node"), "--replicas", "2",
             "--ops", "300", "--required-acks", "1",
             "--leaf-capacity", "8"],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "streamed 300 write(s)" in text
        assert "replica0" in text and "replica1" in text
        assert "lag 0B" in text
        assert "graceful shutdown: checkpointed 300 entries" in text
        # Replica directories are real durability roots.
        replica_dir = tmp_path / "node-replicas" / "replica0"
        recovered, _ = DurableTree.recover(replica_dir, QuITTree, CFG)
        assert len(recovered) == 300
        recovered.close()

    def test_replicate_with_chaos_still_converges(self, tmp_path):
        out = io.StringIO()
        code = main(
            ["replicate", str(tmp_path / "node"), "--replicas", "1",
             "--ops", "200", "--chaos-drop", "0.3", "--seed", "5",
             "--leaf-capacity", "8"],
            out=out,
        )
        assert code == 0
        assert "lag 0B" in out.getvalue()

    def test_replicate_resumes_existing_directory(self, tmp_path):
        seed_state(tmp_path / "node")
        out = io.StringIO()
        code = main(
            ["replicate", str(tmp_path / "node"), "--replicas", "1",
             "--ops", "10"],
            out=out,
        )
        assert code == 0
        assert "checkpointed 260 entries" in out.getvalue()


class TestPromoteCommand:
    def test_promote_bumps_epoch_and_checkpoints(self, tmp_path):
        out = io.StringIO()
        assert main(
            ["replicate", str(tmp_path / "node"), "--replicas", "1",
             "--ops", "100", "--leaf-capacity", "8"],
            out=out,
        ) == 0
        replica_dir = tmp_path / "node-replicas" / "replica0"
        out = io.StringIO()
        assert main(["promote", str(replica_dir)], out=out) == 0
        text = out.getvalue()
        assert "epoch 0 -> 1" in text
        assert "checkpointed 100 entries" in text
        # Promotion removed the follower cursor and left a primary.
        out = io.StringIO()
        assert main(["status", str(replica_dir)], out=out) == 0
        assert "primary" in out.getvalue()


class TestStatusCommand:
    def test_status_of_primary_directory(self, tmp_path, capsys):
        seed_state(tmp_path)
        assert main(["status", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "role" in out and "primary" in out
        assert "snapshot" in out
        assert "segment(s)" in out

    def test_status_of_replica_directory(self, tmp_path):
        out = io.StringIO()
        assert main(
            ["replicate", str(tmp_path / "node"), "--replicas", "1",
             "--ops", "50"],
            out=out,
        ) == 0
        out = io.StringIO()
        replica_dir = tmp_path / "node-replicas" / "replica0"
        assert main(["status", str(replica_dir)], out=out) == 0
        text = out.getvalue()
        assert "replica" in text
        assert "applied_lsn" in text

    def test_status_of_missing_directory(self, tmp_path):
        out = io.StringIO()
        assert main(["status", str(tmp_path / "nope")], out=out) == 1


class TestGracefulShutdown:
    """Satellite: SIGTERM during --serve checkpoints, closes the WAL,
    and exits 0 — verified end-to-end in a real subprocess."""

    @pytest.mark.skipif(
        not hasattr(__import__("signal"), "SIGTERM")
        or __import__("os").name != "posix",
        reason="POSIX signals required",
    )
    def test_sigterm_checkpoints_and_exits_zero(self, tmp_path):
        import os
        import signal
        import subprocess
        import sys
        import time

        node = tmp_path / "node"
        env = dict(os.environ)
        repo_src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "src",
        )
        env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.bench.durability_cli",
             "replicate", str(node), "--replicas", "1", "--ops", "150",
             "--leaf-capacity", "8", "--serve"],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            # Wait for the serve loop (ingest + catch-up already done).
            deadline = time.time() + 30
            for line in proc.stdout:
                if "serving until SIGTERM" in line:
                    break
                assert time.time() < deadline, "serve line never appeared"
            proc.send_signal(signal.SIGTERM)
            remaining, errors = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, errors
        assert "graceful shutdown: checkpointed 150 entries" in remaining
        # The directory it left behind: checkpointed snapshot, empty WAL.
        assert (node / "snapshot.quit").exists()
        assert segment_paths(node / WAL_DIRNAME) == []
        recovered, report = DurableTree.recover(node, QuITTree, CFG)
        assert report.clean and report.snapshot_loaded
        assert len(recovered) == 150
        recovered.close()


class TestVerify:
    def _segmented_state(self, directory):
        t = DurableTree(
            QuITTree(CFG), directory, fsync="none", segment_bytes=512
        )
        for i in range(200):
            t.insert(i, i)
        t.close()
        return segment_paths(directory / WAL_DIRNAME)

    def test_clean_directory_exits_zero(self, tmp_path, capsys):
        self._segmented_state(tmp_path)
        assert main(["verify", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "0 damaged" in out
        assert "CORRUPT" not in out

    def test_damaged_segment_exits_one(self, tmp_path, capsys):
        segs = self._segmented_state(tmp_path)
        target = segs[len(segs) // 2]
        data = bytearray(target.read_bytes())
        data[len(data) // 2] ^= 0xFF
        target.write_bytes(bytes(data))
        assert main(["verify", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "CORRUPT" in out
        assert "1 damaged" in out

    def test_quarantine_flag_copies_evidence(self, tmp_path, capsys):
        segs = self._segmented_state(tmp_path)
        target = segs[0]
        data = bytearray(target.read_bytes())
        data[len(data) // 2] ^= 0xFF
        target.write_bytes(bytes(data))
        assert main(["verify", str(tmp_path), "--quarantine"]) == 1
        out = capsys.readouterr().out
        assert "quarantined ->" in out
        copies = list((tmp_path / "quarantine").iterdir())
        assert len(copies) == 1
        assert copies[0].read_bytes() == bytes(data)
        # The damaged original stays put (evidence is a copy).
        assert target.exists()
        # status surfaces the quarantine footprint.
        assert main(["status", str(tmp_path)]) == 0
        assert "quarantine" in capsys.readouterr().out

    def test_torn_tail_on_final_segment_is_not_damage(
        self, tmp_path, capsys
    ):
        segs = self._segmented_state(tmp_path)
        last = segs[-1]
        last.write_bytes(last.read_bytes()[:-3])
        assert main(["verify", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "note: torn tail" in out

    def test_missing_directory_exits_one(self, tmp_path, capsys):
        assert main(["verify", str(tmp_path / "nope")]) == 1
