"""Property-based tests: every tree variant is extensionally a sorted
dict, and structural invariants hold after arbitrary operation sequences.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.core import (
    BPlusTree,
    LilBPlusTree,
    PoleBPlusTree,
    QuITTree,
    TailBPlusTree,
    TreeConfig,
)

from conftest import ALL_TREE_CLASSES

SMALL = TreeConfig(leaf_capacity=4, internal_capacity=4)
MEDIUM = TreeConfig(leaf_capacity=8, internal_capacity=8)

keys_strategy = st.lists(
    st.integers(min_value=-10_000, max_value=10_000), max_size=300
)

tree_class_strategy = st.sampled_from(ALL_TREE_CLASSES)


@settings(max_examples=60, deadline=None)
@given(cls=tree_class_strategy, keys=keys_strategy)
def test_insert_matches_oracle(cls, keys):
    tree = cls(SMALL)
    oracle = {}
    for k in keys:
        tree.insert(k, k * 7)
        oracle[k] = k * 7
    assert list(tree.items()) == sorted(oracle.items())
    assert len(tree) == len(oracle)
    tree.validate(check_min_fill=False)


@settings(max_examples=40, deadline=None)
@given(cls=tree_class_strategy, keys=keys_strategy)
def test_lookup_matches_oracle(cls, keys):
    tree = cls(SMALL)
    oracle = {}
    for k in keys:
        tree.insert(k, str(k))
        oracle[k] = str(k)
    for k in list(oracle)[:50]:
        assert tree.get(k) == oracle[k]
    for probe in range(-5, 5):
        assert (probe in tree) == (probe in oracle)


@settings(max_examples=40, deadline=None)
@given(
    cls=tree_class_strategy,
    keys=keys_strategy,
    bounds=st.tuples(
        st.integers(-10_000, 10_000), st.integers(-10_000, 10_000)
    ),
)
def test_range_query_matches_oracle(cls, keys, bounds):
    lo, hi = min(bounds), max(bounds)
    tree = cls(SMALL)
    oracle = {}
    for k in keys:
        tree.insert(k, k)
        oracle[k] = k
    expected = sorted(
        (k, v) for k, v in oracle.items() if lo <= k < hi
    )
    assert tree.range_query(lo, hi) == expected


@settings(max_examples=40, deadline=None)
@given(
    cls=tree_class_strategy,
    keys=keys_strategy,
    delete_selector=st.integers(min_value=2, max_value=5),
)
def test_insert_delete_matches_oracle(cls, keys, delete_selector):
    tree = cls(SMALL)
    oracle = {}
    for i, k in enumerate(keys):
        if i % delete_selector == 0 and oracle:
            victim = next(iter(oracle))
            assert tree.delete(victim)
            del oracle[victim]
        tree.insert(k, i)
        oracle[k] = i
    assert list(tree.items()) == sorted(oracle.items())
    tree.validate(check_min_fill=False)


@settings(max_examples=30, deadline=None)
@given(keys=st.lists(
    st.integers(min_value=0, max_value=100_000),
    min_size=1, max_size=200, unique=True,
))
def test_bulk_load_matches_incremental(keys):
    loaded = BPlusTree(MEDIUM)
    loaded.bulk_load(sorted((k, k) for k in keys))
    incremental = BPlusTree(MEDIUM)
    for k in keys:
        incremental.insert(k, k)
    assert list(loaded.items()) == list(incremental.items())
    loaded.validate(check_min_fill=False)


@settings(max_examples=30, deadline=None)
@given(
    base=st.lists(st.integers(0, 5_000), max_size=150, unique=True),
    run=st.lists(st.integers(0, 5_000), max_size=150, unique=True),
)
def test_bulk_insert_run_matches_oracle(base, run):
    tree = BPlusTree(SMALL)
    oracle = {}
    for k in base:
        tree.insert(k, ("base", k))
        oracle[k] = ("base", k)
    tree.bulk_insert_run(sorted((k, ("run", k)) for k in run))
    for k in run:
        oracle[k] = ("run", k)
    assert list(tree.items()) == sorted(oracle.items())
    tree.validate(check_min_fill=False)


@settings(max_examples=25, deadline=None)
@given(keys=st.lists(
    st.integers(0, 2_000), min_size=20, max_size=300, unique=True,
))
def test_fastpath_variants_agree_with_classical(keys):
    classical = BPlusTree(SMALL)
    for k in keys:
        classical.insert(k, k)
    expected = list(classical.items())
    for cls in (TailBPlusTree, LilBPlusTree, PoleBPlusTree, QuITTree):
        tree = cls(SMALL)
        for k in keys:
            tree.insert(k, k)
        assert list(tree.items()) == expected, cls.name


@settings(max_examples=25, deadline=None)
@given(keys=keys_strategy)
def test_quit_occupancy_never_exceeds_capacity(keys):
    tree = QuITTree(SMALL)
    for k in keys:
        tree.insert(k, k)
    for leaf in tree.leaves():
        assert leaf.size <= SMALL.leaf_capacity


class TreeMachine(RuleBasedStateMachine):
    """Stateful fuzz: arbitrary interleavings of operations on QuIT vs a
    dict oracle, with validation as a standing invariant."""

    def __init__(self):
        super().__init__()
        self.tree = None
        self.oracle = {}

    @initialize(cls=tree_class_strategy)
    def setup(self, cls):
        self.tree = cls(SMALL)
        self.oracle = {}

    @rule(key=st.integers(-500, 500), value=st.integers())
    def insert(self, key, value):
        self.tree.insert(key, value)
        self.oracle[key] = value

    @rule(key=st.integers(-500, 500))
    def delete(self, key):
        assert self.tree.delete(key) == (key in self.oracle)
        self.oracle.pop(key, None)

    @rule(key=st.integers(-500, 500))
    def lookup(self, key):
        assert self.tree.get(key, "absent") == self.oracle.get(
            key, "absent"
        )

    @rule(lo=st.integers(-500, 500), width=st.integers(0, 100))
    def range_scan(self, lo, width):
        got = self.tree.range_query(lo, lo + width)
        expected = sorted(
            (k, v) for k, v in self.oracle.items() if lo <= k < lo + width
        )
        assert got == expected

    @invariant()
    def structurally_valid(self):
        if self.tree is not None:
            self.tree.validate(check_min_fill=False)
            assert len(self.tree) == len(self.oracle)


TestTreeMachine = TreeMachine.TestCase
TestTreeMachine.settings = settings(
    max_examples=25,
    stateful_step_count=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
