"""Tests for sortedness metrics (§2, Fig. 2)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sortedness.metrics import (
    find_outliers_iqr,
    inversion_count,
    is_sorted,
    k_out_of_order,
    kl_sortedness,
    longest_nondecreasing_subsequence_length,
    max_displacement,
    out_of_order_count,
    running_max_violations,
    sorted_prefix_length,
)


class TestIsSorted:
    def test_cases(self):
        assert is_sorted([])
        assert is_sorted([1])
        assert is_sorted([1, 1, 2, 3])
        assert not is_sorted([2, 1])


class TestOutOfOrderCount:
    def test_figure_2a(self):
        # Fig. 2a: 1 2 4 3 5 7 6 8 9 10 — entries 3 and 6 break order.
        assert out_of_order_count([1, 2, 4, 3, 5, 7, 6, 8, 9, 10]) == 2

    def test_sorted_is_zero(self):
        assert out_of_order_count(list(range(50))) == 0

    def test_reverse_all_break(self):
        assert out_of_order_count([5, 4, 3, 2, 1]) == 4


class TestRunningMaxViolations:
    def test_outlier_shadows_followers(self):
        # After the outlier 100 arrives, everything below it violates.
        assert running_max_violations([1, 2, 100, 3, 4, 5]) == 3

    def test_sorted_is_zero(self):
        assert running_max_violations(list(range(20))) == 0


class TestInversions:
    def test_known_counts(self):
        assert inversion_count([]) == 0
        assert inversion_count([1, 2, 3]) == 0
        assert inversion_count([2, 1]) == 1
        assert inversion_count([3, 2, 1]) == 3
        assert inversion_count([1, 3, 2, 4]) == 1

    def test_reverse_is_n_choose_2(self):
        n = 30
        assert inversion_count(list(reversed(range(n)))) == n * (n - 1) // 2

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 100), max_size=60))
    def test_matches_quadratic_reference(self, seq):
        reference = sum(
            1
            for i in range(len(seq))
            for j in range(i + 1, len(seq))
            if seq[i] > seq[j]
        )
        assert inversion_count(seq) == reference


class TestLndsAndK:
    def test_lnds_known(self):
        assert longest_nondecreasing_subsequence_length([]) == 0
        assert longest_nondecreasing_subsequence_length([1, 2, 2, 3]) == 4
        assert longest_nondecreasing_subsequence_length([3, 1, 2]) == 2

    def test_k_fig_2c(self):
        # Fig. 2c: 1 8 3 6 5 4 7 2 10 9 with K=5.
        assert k_out_of_order([1, 8, 3, 6, 5, 4, 7, 2, 10, 9]) == 5

    def test_k_sorted_zero(self):
        assert k_out_of_order(list(range(100))) == 0

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 50), max_size=80))
    def test_removing_k_entries_leaves_sorted(self, seq):
        # K is the *minimum* number of removals; verify achievability by
        # keeping an LNDS.
        k = k_out_of_order(seq)
        assert 0 <= k <= len(seq)
        if seq:
            assert k < len(seq) or len(set(seq)) > 1


class TestMaxDisplacement:
    def test_sorted_zero(self):
        assert max_displacement(list(range(20))) == 0

    def test_fig_2c_value(self):
        # Fig. 2c: maximum displacement L=6 (entry 8 at position 1 vs
        # sorted position 7, or entry 2 at position 7 vs position 1).
        assert max_displacement([1, 8, 3, 6, 5, 4, 7, 2, 10, 9]) == 6

    def test_single_swap(self):
        assert max_displacement([0, 5, 2, 3, 4, 1, 6]) == 4

    def test_duplicates_stable(self):
        assert max_displacement([1, 1, 1, 1]) == 0


class TestKlSortedness:
    def test_combined(self):
        m = kl_sortedness([1, 8, 3, 6, 5, 4, 7, 2, 10, 9])
        assert (m.k, m.l) == (5, 6)
        assert m.k_fraction == 0.5
        assert m.l_fraction == 0.6

    def test_empty(self):
        m = kl_sortedness([])
        assert m.k == 0 and m.l == 0
        assert m.k_fraction == 0.0


class TestSortedPrefix:
    def test_cases(self):
        assert sorted_prefix_length([]) == 0
        assert sorted_prefix_length([1, 2, 3]) == 3
        assert sorted_prefix_length([1, 3, 2]) == 2
        assert sorted_prefix_length([5, 1]) == 1


class TestIqrOutliers:
    def test_obvious_outlier_found(self):
        seq = list(range(20)) + [10_000]
        assert 20 in find_outliers_iqr(seq)

    def test_uniform_has_none(self):
        assert find_outliers_iqr(list(range(100))) == []

    def test_short_sequences(self):
        assert find_outliers_iqr([1, 2, 3]) == []


class TestMannilaMeasures:
    def test_runs_count(self):
        from repro.sortedness import runs_count

        assert runs_count([]) == 0
        assert runs_count([1, 2, 3]) == 1
        assert runs_count([3, 2, 1]) == 3
        assert runs_count([1, 3, 2, 4]) == 2

    def test_dis_known_values(self):
        from repro.sortedness import dis_measure

        assert dis_measure([]) == 0
        assert dis_measure([1, 2, 3]) == 0
        assert dis_measure([2, 1]) == 1
        # 9 at position 0 inverts with 0 at position 4: span 4.
        assert dis_measure([9, 2, 3, 4, 0]) == 4

    def test_dis_matches_quadratic_reference(self):
        import random

        from repro.sortedness import dis_measure

        rng = random.Random(13)
        for _ in range(30):
            seq = [rng.randrange(50) for _ in range(rng.randrange(2, 60))]
            reference = max(
                (j - i
                 for i in range(len(seq))
                 for j in range(i + 1, len(seq))
                 if seq[i] > seq[j]),
                default=0,
            )
            assert dis_measure(seq) == reference, seq

    def test_exchanges_equals_inversions(self):
        from repro.sortedness import exchanges_lower_bound, inversion_count

        seq = [4, 1, 3, 2]
        assert exchanges_lower_bound(seq) == inversion_count(seq)
