"""Tests for repro.core.stats."""

from repro.core.stats import OccupancyStats, TreeStats


class TestTreeStats:
    def test_initial_zero(self):
        stats = TreeStats()
        assert stats.inserts == 0
        assert stats.fast_insert_fraction == 0.0
        assert stats.top_insert_fraction == 0.0

    def test_fractions(self):
        stats = TreeStats(fast_inserts=75, top_inserts=25)
        assert stats.inserts == 100
        assert stats.fast_insert_fraction == 0.75
        assert stats.top_insert_fraction == 0.25

    def test_reset(self):
        stats = TreeStats(fast_inserts=5, leaf_splits=3)
        stats.reset()
        assert stats.fast_inserts == 0
        assert stats.leaf_splits == 0

    def test_snapshot_is_independent(self):
        stats = TreeStats(top_inserts=10)
        snap = stats.snapshot()
        stats.top_inserts = 20
        assert snap.top_inserts == 10

    def test_diff(self):
        stats = TreeStats(fast_inserts=10, node_accesses=100)
        earlier = TreeStats(fast_inserts=4, node_accesses=60)
        delta = stats.diff(earlier)
        assert delta.fast_inserts == 6
        assert delta.node_accesses == 40

    def test_as_dict_round_trip(self):
        stats = TreeStats(deletes=7)
        d = stats.as_dict()
        assert d["deletes"] == 7
        assert TreeStats(**d) == stats


class TestOccupancyStats:
    def test_avg_occupancy(self):
        occ = OccupancyStats(leaf_count=4, entries=128, capacity=64)
        assert occ.avg_occupancy == 0.5

    def test_empty_tree(self):
        occ = OccupancyStats()
        assert occ.avg_occupancy == 0.0
        assert occ.node_count == 0

    def test_node_count(self):
        occ = OccupancyStats(leaf_count=10, internal_count=3)
        assert occ.node_count == 13
