"""Tests for ASCII charts, JSON serialization, and the CLI extras."""

import json

import pytest

from repro.bench.cli import main
from repro.bench.reporting import (
    ExperimentResult,
    from_json_dict,
    render_chart,
    to_json_dict,
)


def sample_result():
    return ExperimentResult(
        exp_id="demo",
        title="demo",
        columns=["k", "a", "b"],
        rows=[
            {"k": 0, "a": 1.0, "b": 3.0},
            {"k": 50, "a": 2.0, "b": 2.0},
            {"k": 100, "a": 3.0, "b": 1.0},
        ],
        notes=["n"],
    )


class TestRenderChart:
    def test_contains_series_and_axes(self):
        text = render_chart(sample_result(), "k", ["a", "b"])
        assert "*" in text and "o" in text
        assert "[k]" in text
        assert "*=a" in text and "o=b" in text

    def test_extremes_on_borders(self):
        text = render_chart(sample_result(), "k", ["a"])
        lines = text.splitlines()
        assert lines[1].lstrip().startswith("3")   # max label
        assert lines[-3].lstrip().startswith("1")  # min label

    def test_flat_series(self):
        result = ExperimentResult(
            "f", "flat", ["k", "v"],
            rows=[{"k": 0, "v": 5.0}, {"k": 1, "v": 5.0}],
        )
        assert "f:" in render_chart(result, "k", ["v"])

    def test_empty(self):
        empty = ExperimentResult("e", "t", ["k", "v"])
        assert render_chart(empty, "k", ["v"]) == "(no rows)"

    def test_single_row(self):
        one = ExperimentResult(
            "o", "t", ["k", "v"], rows=[{"k": 0, "v": 2.0}]
        )
        assert "o:" in render_chart(one, "k", ["v"])


class TestJsonRoundTrip:
    def test_round_trip(self):
        result = sample_result()
        data = json.loads(json.dumps(to_json_dict(result)))
        back = from_json_dict(data)
        assert back == result

    def test_notes_optional(self):
        back = from_json_dict(
            {"exp_id": "x", "title": "t", "columns": ["a"], "rows": []}
        )
        assert back.notes == []


class TestCliExtras:
    def test_json_dir(self, tmp_path, capsys):
        code = main([
            "fig5b", "--smoke", "--json-dir", str(tmp_path / "out"),
        ])
        assert code == 0
        data = json.loads((tmp_path / "out" / "fig5b.json").read_text())
        assert data["exp_id"] == "fig5b"
        assert len(data["rows"]) == 11

    def test_plot_flag(self, capsys):
        code = main(["fig5b", "--smoke", "--plot"])
        assert code == 0
        out = capsys.readouterr().out
        assert "[k_pct]" in out
        assert "*=tail_model_pct" in out
