"""Chaos-soak suite: randomized kill/partition/restart schedules.

Every schedule asserts the two replication guarantees: no acknowledged
write is ever lost, and all replicas converge byte-for-byte with the
final primary (whose directory must also recover to exactly the served
state).

The default run keeps tier-1 fast (a few short schedules); CI fans out
with environment knobs::

    CHAOS_SCHEDULES=10 CHAOS_SEED_OFFSET=40 CHAOS_OPS=1000 pytest ...
"""

from __future__ import annotations

import os

import pytest

from repro.testing.chaos import ChaosConfig, ChaosSoak, run_soak

SCHEDULES = int(os.environ.get("CHAOS_SCHEDULES", "3"))
SEED_OFFSET = int(os.environ.get("CHAOS_SEED_OFFSET", "0"))
OPS = int(os.environ.get("CHAOS_OPS", "300"))


def assert_clean(report) -> None:
    assert report.lost_writes == [], report.summary()
    assert report.divergent_replicas == [], report.summary()
    assert report.invariant_violations == [], report.summary()
    assert report.recovered_matches, report.summary()
    assert report.converged, report.summary()
    assert report.ok


@pytest.mark.parametrize(
    "seed", [SEED_OFFSET + i for i in range(SCHEDULES)]
)
def test_soak_loses_no_acked_write(tmp_path, seed):
    report = run_soak(tmp_path, ChaosConfig(seed=seed, ops=OPS))
    assert_clean(report)
    assert report.ops == OPS


def test_soak_actually_injects_faults(tmp_path):
    """A guard against the harness silently degrading into a calm run:
    with cranked probabilities the counters must show real chaos."""
    config = ChaosConfig(
        seed=1234,
        ops=500,
        event_probability=0.08,
        drop_probability=0.15,
        duplicate_probability=0.15,
    )
    report = run_soak(tmp_path, config)
    assert_clean(report)
    assert report.failovers > 0
    assert report.partitions > 0
    assert report.primary_kills + report.replica_kills > 0
    assert report.transport_drops > 0
    assert report.transport_duplicates > 0
    assert report.fenced_rejects + report.ack_failures > 0
    assert report.final_epoch > 1


def test_soak_without_node_faults_is_lossless_async(tmp_path):
    """With no kills or partitions, asynchronous replication (acks=0)
    is also lossless — only the links misbehave."""
    config = ChaosConfig(
        seed=7,
        ops=400,
        required_acks=0,
        event_probability=0.0,
        drop_probability=0.2,
        duplicate_probability=0.2,
    )
    report = run_soak(tmp_path, config)
    assert_clean(report)
    assert report.failovers == 0
    assert report.acked == report.ops


def test_soak_forces_segment_rotation_and_checkpoints(tmp_path):
    """The stream must survive rotation + checkpoint truncation."""
    config = ChaosConfig(
        seed=11, ops=400, segment_bytes=512, checkpoint_every=60,
        event_probability=0.0,
    )
    soak = ChaosSoak(tmp_path, config)
    report = soak.run()
    assert_clean(report)
    assert report.checkpoints >= 5


def test_report_summary_is_printable(tmp_path):
    report = run_soak(tmp_path, ChaosConfig(seed=SEED_OFFSET, ops=120))
    text = report.summary()
    assert f"seed={SEED_OFFSET}" in text
    assert "acked" in text
