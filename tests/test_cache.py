"""Tests for the LRU page-cache simulator (the Fig. 10b mechanism)."""

import pytest

from repro.analysis import (
    LruPageCache,
    lookup_trace,
    simulate_lookup_cache,
)
from repro.core import BPlusTree, QuITTree, TreeConfig

CFG = TreeConfig(leaf_capacity=16, internal_capacity=16)


class TestLruPageCache:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            LruPageCache(0)

    def test_cold_then_hot(self):
        cache = LruPageCache(4)
        assert not cache.access(1)
        assert cache.access(1)
        assert cache.report.hits == 1
        assert cache.report.accesses == 2

    def test_eviction_order_is_lru(self):
        cache = LruPageCache(2)
        cache.access(1)
        cache.access(2)
        cache.access(1)   # 1 becomes MRU
        cache.access(3)   # evicts 2
        assert cache.access(1)
        assert not cache.access(2)
        assert cache.report.evictions >= 1

    def test_everything_fits(self):
        cache = LruPageCache(100)
        cache.access_many([1, 2, 3] * 10)
        assert cache.report.evictions == 0
        assert cache.report.hits == 27
        assert cache.report.distinct_pages == 3

    def test_hit_rate(self):
        cache = LruPageCache(10)
        cache.access_many([5] * 10)
        assert cache.report.hit_rate == pytest.approx(0.9)

    def test_empty_report(self):
        assert LruPageCache(1).report.hit_rate == 0.0


class TestLookupTrace:
    def test_trace_length_is_height_per_lookup(self):
        tree = BPlusTree(CFG)
        tree.update((k, k) for k in range(2000))
        trace = list(lookup_trace(tree, [10, 500, 1999]))
        assert len(trace) == 3 * tree.height

    def test_trace_starts_at_root(self):
        tree = BPlusTree(CFG)
        tree.update((k, k) for k in range(500))
        trace = list(lookup_trace(tree, [42]))
        assert trace[0] == tree.root.node_id

    def test_trace_does_not_touch_stats(self):
        tree = BPlusTree(CFG)
        tree.update((k, k) for k in range(500))
        before = tree.stats.node_accesses
        list(lookup_trace(tree, [1, 2, 3]))
        assert tree.stats.node_accesses == before


class TestSimulateLookupCache:
    def _trees(self, n=5000):
        bt, qt = BPlusTree(CFG), QuITTree(CFG)
        for k in range(n):
            bt.insert(k, None)
            qt.insert(k, None)
        return bt, qt

    def test_sizing_validation(self):
        tree, _ = self._trees(100)
        with pytest.raises(ValueError):
            simulate_lookup_cache(tree, [1])
        with pytest.raises(ValueError):
            simulate_lookup_cache(
                tree, [1], cache_pages=4, cache_fraction=0.5
            )

    def test_full_cache_all_hits_after_warmup(self):
        tree, _ = self._trees(1000)
        targets = [500] * 100
        report = simulate_lookup_cache(tree, targets, cache_fraction=1.0)
        assert report.misses == tree.height  # only the cold descent

    def test_quit_beats_btree_at_equal_absolute_cache(self):
        import random

        bt, qt = self._trees()
        rng = random.Random(4)
        targets = [rng.randrange(5000) for _ in range(3000)]
        pages = int(bt.occupancy().node_count * 0.4)
        bt_report = simulate_lookup_cache(bt, targets, cache_pages=pages)
        qt_report = simulate_lookup_cache(qt, targets, cache_pages=pages)
        # Fig. 10b mechanism: the smaller tree produces less simulated
        # I/O at the same absolute cache size.  (Hit *rate* is not
        # comparable across trees of different heights.)
        assert qt_report.misses < bt_report.misses

    def test_hit_rate_monotone_in_cache_size(self):
        import random

        tree, _ = self._trees()
        rng = random.Random(5)
        targets = [rng.randrange(5000) for _ in range(2000)]
        rates = [
            simulate_lookup_cache(
                tree, targets, cache_fraction=f
            ).hit_rate
            for f in (0.1, 0.3, 0.6, 1.0)
        ]
        assert rates == sorted(rates)
