"""Equivalence tests for batched ingest (``insert_many``).

The contract: for any batch, ``tree.insert_many(items)`` leaves the tree
in a state extensionally identical to a per-key ``insert`` loop over the
same items in the same order — including upsert semantics (later
duplicates win), the doubly linked leaf chain, and structural
invariants.  Covered for every entry point: all tree variants (including
the QuIT ablations), the SWARE buffered tree, and the concurrent
wrapper.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.concurrency import ConcurrentTree
from repro.core import (
    BPlusTree,
    QuITTree,
    TreeConfig,
    carve_runs,
    merge_run,
    probe_runs,
)
from repro.sware import SABPlusTree

from conftest import ALL_TREE_CLASSES

SMALL = TreeConfig(leaf_capacity=8, internal_capacity=8)


def _batch_patterns(n: int = 600, seed: int = 7):
    """Named adversarial batch shapes (lists of (key, value) items)."""
    rng = random.Random(seed)
    shuffled = list(range(n))
    rng.shuffle(shuffled)
    near = list(range(n))
    for _ in range(n // 20):
        i, j = rng.randrange(n), rng.randrange(n)
        near[i], near[j] = near[j], near[i]
    return {
        "sorted": [(k, k) for k in range(n)],
        "reverse": [(k, k) for k in reversed(range(n))],
        "shuffled": [(k, k * 3) for k in shuffled],
        "duplicates": [(k % 97, i) for i, k in enumerate(shuffled)],
        "near_sorted": [(k, -k) for k in near],
        "sawtooth": [((i * 41) % n, i) for i in range(n)],
    }


BATCH_PATTERNS = _batch_patterns()


def _reference(cls, items):
    tree = cls(SMALL)
    for k, v in items:
        tree.insert(k, v)
    return tree


def _check_leaf_chain(tree):
    """The leaf chain must be consistent in both directions and agree
    with items()."""
    forward = []
    leaf = tree.head_leaf
    prev = None
    while leaf is not None:
        assert leaf.prev is prev, "broken prev link"
        forward.extend(zip(leaf.keys, leaf.values))
        prev, leaf = leaf, leaf.next
    assert prev is tree.tail_leaf
    assert forward == list(tree.items())


@pytest.mark.parametrize("pattern", sorted(BATCH_PATTERNS))
def test_insert_many_matches_per_key(any_tree_class, pattern):
    items = BATCH_PATTERNS[pattern]
    expected = list(_reference(any_tree_class, items).items())

    tree = any_tree_class(SMALL)
    added = tree.insert_many(items)

    assert list(tree.items()) == expected
    assert added == len({k for k, _ in items})
    assert len(tree) == len(expected)
    tree.validate(check_min_fill=False)
    _check_leaf_chain(tree)


@pytest.mark.parametrize("pattern", sorted(BATCH_PATTERNS))
@pytest.mark.parametrize("batch_size", [1, 7, 64])
def test_chunked_insert_many_matches_per_key(
    any_tree_class, pattern, batch_size
):
    items = BATCH_PATTERNS[pattern]
    expected = list(_reference(any_tree_class, items).items())

    tree = any_tree_class(SMALL)
    for lo in range(0, len(items), batch_size):
        tree.insert_many(items[lo : lo + batch_size])

    assert list(tree.items()) == expected
    tree.validate(check_min_fill=False)
    _check_leaf_chain(tree)


def test_insert_many_interleaved_with_per_key(any_tree_class):
    """Alternating insert / insert_many must compose like one stream."""
    rng = random.Random(11)
    stream = [(rng.randrange(400), i) for i in range(800)]
    oracle = {}
    tree = any_tree_class(SMALL)
    i = 0
    while i < len(stream):
        if rng.random() < 0.5:
            k, v = stream[i]
            tree.insert(k, v)
            oracle[k] = v
            i += 1
        else:
            chunk = stream[i : i + rng.randrange(1, 60)]
            tree.insert_many(chunk)
            oracle.update(chunk)
            i += len(chunk)
    assert list(tree.items()) == sorted(oracle.items())
    tree.validate(check_min_fill=False)
    _check_leaf_chain(tree)


def test_insert_many_returns_new_key_count(any_tree_class):
    tree = any_tree_class(SMALL)
    assert tree.insert_many([(k, k) for k in range(50)]) == 50
    # All duplicates: nothing new, values updated.
    assert tree.insert_many([(k, -k) for k in range(50)]) == 0
    assert tree.get(10) == -10
    # Half new, half updates, plus an in-batch duplicate.
    assert tree.insert_many([(49, 0), (50, 0), (50, 1), (51, 0)]) == 2
    assert tree.get(50) == 1


def test_insert_many_empty_and_trivial(any_tree_class):
    tree = any_tree_class(SMALL)
    assert tree.insert_many([]) == 0
    assert tree.insert_many(iter([(5, "x")])) == 1
    assert list(tree.items()) == [(5, "x")]


def test_insert_many_rejects_bad_fill_factor():
    tree = BPlusTree(SMALL)
    with pytest.raises(ValueError):
        tree.insert_many([(1, 1)], fill_factor=0.0)
    with pytest.raises(ValueError):
        tree.insert_many([(1, 1)], fill_factor=1.5)


def test_insert_many_non_numeric_keys(any_tree_class):
    """String keys exercise the generic (non-vectorized) run carver."""
    words = [f"k{i:04d}" for i in range(300)]
    rng = random.Random(3)
    rng.shuffle(words)
    items = [(w, w.upper()) for w in words]
    expected = list(_reference(any_tree_class, items).items())
    tree = any_tree_class(SMALL)
    tree.insert_many(items)
    assert list(tree.items()) == expected
    tree.validate(check_min_fill=False)


def test_insert_many_batch_counters():
    tree = BPlusTree(SMALL)
    tree.insert_many([(k, k) for k in range(200)])
    stats = tree.stats
    assert stats.batch_inserts == 200
    assert stats.batch_runs == 1
    assert stats.batch_segments >= stats.batch_runs
    assert stats.batch_coalesced == 0


def test_insert_many_coalesces_fragmented_batches():
    """A heavily fragmented batch (avg run length << leaf capacity) is
    stable-sorted into a single run rather than applied run-by-run."""
    rng = random.Random(5)
    keys = list(range(2_000))
    rng.shuffle(keys)
    tree = BPlusTree(TreeConfig(leaf_capacity=64, internal_capacity=64))
    tree.insert_many([(k, k) for k in keys])
    assert tree.stats.batch_coalesced == 1
    assert tree.stats.batch_runs == 1
    assert list(tree.items()) == [(k, k) for k in range(2_000)]


def test_sware_insert_many_matches_per_key():
    items = BATCH_PATTERNS["shuffled"]
    ref = SABPlusTree(SMALL, buffer_capacity=64)
    for k, v in items:
        ref.insert(k, v)
    ref.flush()

    sa = SABPlusTree(SMALL, buffer_capacity=64)
    # Pre-load some buffered entries so insert_many must flush first.
    for k, v in items[:100]:
        sa.insert(k, v)
    sa.insert_many(items[100:])
    sa.flush()
    assert list(sa.items()) == list(ref.items())
    sa.tree.validate(check_min_fill=False)


def test_concurrent_insert_many_matches_per_key():
    items = BATCH_PATTERNS["near_sorted"]
    expected = list(_reference(QuITTree, items).items())
    ct = ConcurrentTree(QuITTree(SMALL))
    ct.insert_many(items)
    assert list(ct.tree.items()) == expected
    ct.tree.validate(check_min_fill=False)


def test_probe_runs_counts():
    assert probe_runs([]) == ([], 0)
    items = [(1, 0), (2, 0), (2, 0), (1, 0), (5, 0)]
    materialized, n_runs = probe_runs(iter(items))
    assert materialized == items
    assert n_runs == 2
    assert probe_runs([(9, 0), (7, 0), (5, 0)])[1] == 3


def test_carve_runs_duplicate_collapse_last_wins():
    runs = list(carve_runs([(1, "a"), (1, "b"), (2, "c"), (0, "d")]))
    assert runs == [([1, 2], ["b", "c"]), ([0], ["d"])]


@settings(max_examples=50, deadline=None)
@given(
    base=st.lists(st.integers(0, 200), max_size=80, unique=True),
    run=st.lists(st.integers(0, 200), max_size=80, unique=True),
)
def test_merge_run_matches_dict_oracle(base, run):
    base = sorted(base)
    run = sorted(run)
    keys, vals, added = merge_run(
        base, [("b", k) for k in base], run, [("r", k) for k in run]
    )
    oracle = {k: ("b", k) for k in base}
    oracle.update({k: ("r", k) for k in run})
    assert keys == sorted(oracle)
    assert vals == [oracle[k] for k in keys]
    assert added == len(oracle) - len(base)


@settings(max_examples=60, deadline=None)
@given(
    cls=st.sampled_from(ALL_TREE_CLASSES),
    items=st.lists(
        st.tuples(st.integers(-1_000, 1_000), st.integers()), max_size=250
    ),
    split=st.integers(0, 250),
)
def test_insert_many_property_equivalence(cls, items, split):
    """Arbitrary batches, arbitrarily split between per-key and batched
    ingestion, agree with the per-key reference."""
    expected = list(_reference(cls, items).items())
    tree = cls(SMALL)
    for k, v in items[:split]:
        tree.insert(k, v)
    tree.insert_many(items[split:])
    assert list(tree.items()) == expected
    tree.validate(check_min_fill=False)
    _check_leaf_chain(tree)
