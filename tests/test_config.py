"""Tests for repro.core.config."""

import pytest

from repro.core.config import (
    PAPER_IKR_SCALE,
    PAPER_LEAF_CAPACITY,
    TreeConfig,
    reset_threshold,
)


class TestResetThreshold:
    def test_paper_default_is_22(self):
        # floor(sqrt(510)) = 22 (§5).
        assert reset_threshold(PAPER_LEAF_CAPACITY) == 22

    def test_small_capacities(self):
        assert reset_threshold(1) == 1
        assert reset_threshold(4) == 2
        assert reset_threshold(64) == 8
        assert reset_threshold(100) == 10

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            reset_threshold(0)
        with pytest.raises(ValueError):
            reset_threshold(-5)


class TestTreeConfig:
    def test_defaults(self):
        cfg = TreeConfig()
        assert cfg.leaf_capacity == 64
        assert cfg.internal_capacity == 64
        assert cfg.ikr_scale == PAPER_IKR_SCALE
        assert cfg.reset_after == reset_threshold(64)

    def test_reset_after_derived_from_capacity(self):
        cfg = TreeConfig(leaf_capacity=100, internal_capacity=16)
        assert cfg.reset_after == 10

    def test_reset_after_explicit(self):
        cfg = TreeConfig(reset_after=5)
        assert cfg.reset_after == 5

    def test_leaf_half(self):
        assert TreeConfig(leaf_capacity=64).leaf_half == 32
        assert TreeConfig(leaf_capacity=9).leaf_half == 4

    def test_paper_defaults(self):
        cfg = TreeConfig.paper_defaults()
        assert cfg.leaf_capacity == PAPER_LEAF_CAPACITY
        assert cfg.reset_after == 22

    def test_frozen(self):
        cfg = TreeConfig()
        with pytest.raises(AttributeError):
            cfg.leaf_capacity = 10

    @pytest.mark.parametrize("kwargs", [
        {"leaf_capacity": 3},
        {"internal_capacity": 2},
        {"ikr_scale": 0.0},
        {"ikr_scale": -1.5},
        {"reset_after": 0},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            TreeConfig(**kwargs)
