"""DurableTree: logged mutations, checkpointing, recovery, and the
crash windows around the snapshot-replace / WAL-truncate boundary."""

import threading

import pytest

from repro.concurrency.concurrent_tree import ConcurrentTree
from repro.core import (
    BPlusTree,
    DurableTree,
    PersistenceError,
    QuITTree,
    TreeConfig,
    load_tree,
    save_tree,
)
from repro.core.durable import SNAPSHOT_NAME, WAL_DIRNAME
from repro.core.wal import replay_wal, segment_paths
from repro.testing import SimulatedCrash, failpoints

from conftest import ALL_TREE_CLASSES


CFG = TreeConfig(leaf_capacity=8, internal_capacity=8)


def reference_state(tree) -> dict:
    return dict(tree.items())


class TestLoggedOps:
    @pytest.mark.parametrize(
        "tree_class", ALL_TREE_CLASSES, ids=lambda c: c.name
    )
    def test_recovery_replays_every_variant(self, tmp_path, tree_class):
        t = DurableTree(tree_class(CFG), tmp_path)
        for i in range(300):
            t.insert(i, i * 2)
        t.insert_many([(i, i * 3) for i in range(150, 450)])
        for i in range(0, 100, 7):
            t.delete(i)
        expected = reference_state(t.tree)
        t.close()
        recovered, report = DurableTree.recover(tmp_path, tree_class)
        assert reference_state(recovered.tree) == expected
        assert not report.snapshot_loaded  # never checkpointed
        assert report.records_replayed > 0
        assert recovered.check(check_min_fill=False) == []

    def test_empty_directory_recovers_empty_tree(self, tmp_path):
        t, report = DurableTree.recover(tmp_path / "fresh", QuITTree)
        assert len(t) == 0
        assert report.clean
        assert not report.snapshot_loaded

    def test_empty_batch_is_not_logged(self, tmp_path):
        t = DurableTree(BPlusTree(CFG), tmp_path)
        assert t.insert_many([]) == 0
        t.close()
        assert replay_wal(tmp_path / WAL_DIRNAME).records == 0

    def test_dict_sugar_and_reads_delegate(self, tmp_path):
        t = DurableTree(QuITTree(CFG), tmp_path)
        t[5] = "five"
        assert t[5] == "five"
        assert 5 in t and 6 not in t
        with pytest.raises(KeyError):
            t[6]
        t.insert_many([(i, i) for i in range(10, 20)])
        assert t.get_many([10, 11, 99]) == [10, 11, None]
        assert t.count_range(10, 20) == 10
        assert [k for k, _ in t.range_iter(10, 13)] == [10, 11, 12]
        assert len(t.range_query(10, 13)) == 3
        assert t.scrub().clean


class TestCheckpoint:
    def test_checkpoint_truncates_wal_and_survives(self, tmp_path):
        t = DurableTree(QuITTree(CFG), tmp_path)
        t.insert_many([(i, i) for i in range(500)])
        assert t.checkpoint() == 500
        assert segment_paths(tmp_path / WAL_DIRNAME) == []
        t.insert(1000, "post")
        t.close()
        recovered, report = DurableTree.recover(tmp_path, QuITTree)
        assert report.snapshot_loaded
        assert report.snapshot_entries == 500
        assert report.records_replayed == 1
        assert len(recovered) == 501 and recovered.get(1000) == "post"

    def test_snapshot_is_v2_checksummed(self, tmp_path):
        t = DurableTree(BPlusTree(CFG), tmp_path)
        t.insert_many([(i, i) for i in range(100)])
        t.checkpoint()
        snapshot = tmp_path / SNAPSHOT_NAME
        assert snapshot.read_text().startswith("quit-tree-v2\t")
        # Flip a payload character: load must reject, not mis-rebuild.
        text = snapshot.read_text().splitlines()
        line = text[10]
        crc, key, value = line.split("\t")
        text[10] = f"{crc}\t{key}\t{int(value) + 1}"
        snapshot.write_text("\n".join(text) + "\n")
        with pytest.raises(PersistenceError, match="checksum"):
            load_tree(snapshot)

    def test_recover_still_reads_v1_snapshots(self, tmp_path):
        legacy = BPlusTree(CFG)
        for i in range(200):
            legacy.insert(i, i)
        save_tree(legacy, tmp_path / SNAPSHOT_NAME)  # v1 writer
        recovered, report = DurableTree.recover(tmp_path, QuITTree)
        assert report.snapshot_loaded and report.snapshot_entries == 200
        assert reference_state(recovered.tree) == reference_state(legacy)

    def test_crash_between_replace_and_truncate_double_replays(
        self, tmp_path
    ):
        """Satellite: the snapshot already holds the WAL's ops; replaying
        them on top of it again must be a no-op for insert/delete."""
        t = DurableTree(QuITTree(CFG), tmp_path)
        t.insert_many([(i, i) for i in range(200)])
        for i in range(0, 50, 5):
            t.delete(i)
        expected = reference_state(t.tree)
        wal_records = replay_wal(tmp_path / WAL_DIRNAME).records
        with failpoints.active("checkpoint.before_truncate", mode="crash"):
            with pytest.raises(SimulatedCrash):
                t.checkpoint()
        # Snapshot replaced, WAL untouched: both describe the state.
        assert (tmp_path / SNAPSHOT_NAME).exists()
        assert replay_wal(tmp_path / WAL_DIRNAME).records == wal_records
        recovered, report = DurableTree.recover(tmp_path, QuITTree)
        assert report.snapshot_loaded and report.snapshot_entries == len(expected)
        assert report.records_replayed == wal_records  # double replay
        assert reference_state(recovered.tree) == expected
        assert recovered.check(check_min_fill=False) == []

    def test_crash_mid_truncate_leaves_replayable_suffix(self, tmp_path):
        t = DurableTree(
            QuITTree(CFG), tmp_path, segment_bytes=256
        )
        for i in range(300):
            t.insert(i, i)
        expected = reference_state(t.tree)
        assert len(segment_paths(tmp_path / WAL_DIRNAME)) > 2
        with failpoints.active(
            "wal.before_truncate_segment", mode="crash", hits_before=1
        ):
            with pytest.raises(SimulatedCrash):
                t.checkpoint()
        # One segment deleted, the rest survive; snapshot covers it all.
        recovered, _ = DurableTree.recover(tmp_path, QuITTree)
        assert reference_state(recovered.tree) == expected

    def test_crash_before_snapshot_replace_keeps_old_snapshot(
        self, tmp_path
    ):
        t = DurableTree(QuITTree(CFG), tmp_path)
        t.insert_many([(i, i) for i in range(100)])
        t.checkpoint()
        t.insert(500, "next-epoch")
        expected = reference_state(t.tree)
        with failpoints.active("snapshot.after_tmp_write", mode="crash"):
            with pytest.raises(SimulatedCrash):
                t.checkpoint()
        # The abandoned temp file must not shadow or replace anything.
        recovered, report = DurableTree.recover(tmp_path, QuITTree)
        assert report.snapshot_entries == 100
        assert reference_state(recovered.tree) == expected
        assert not (tmp_path / (SNAPSHOT_NAME + ".tmp")).exists()

    def test_checkpoint_failure_mid_write_preserves_old_snapshot(
        self, tmp_path
    ):
        """Satellite: a failed save unlinks its temp file and leaves the
        previous good snapshot untouched."""
        t = DurableTree(BPlusTree(CFG), tmp_path)
        t.insert_many([(i, i) for i in range(50)])
        t.checkpoint()
        before = (tmp_path / SNAPSHOT_NAME).read_bytes()
        # Slip an unserializable value past the WAL (which would reject
        # it at append time) straight into the tree: the snapshot write
        # then fails partway through its temp file.
        t.tree.insert(60, object())
        with pytest.raises(PersistenceError):
            t.checkpoint()
        assert (tmp_path / SNAPSHOT_NAME).read_bytes() == before
        assert not (tmp_path / (SNAPSHOT_NAME + ".tmp")).exists()


class TestTornTailRecovery:
    def test_corrupt_tail_yields_report_not_exception(self, tmp_path):
        t = DurableTree(QuITTree(CFG), tmp_path)
        for i in range(100):
            t.insert(i, i)
        t.close()
        (seg,) = segment_paths(tmp_path / WAL_DIRNAME)
        data = seg.read_bytes()
        seg.write_bytes(data[:-5])  # tear the last record
        recovered, report = DurableTree.recover(tmp_path, QuITTree)
        assert report.truncated_tail
        assert report.tail_bytes_dropped > 0
        assert report.records_replayed == 99
        assert len(recovered) == 99
        assert not report.clean

    def test_post_recovery_writes_survive_the_next_recovery(self, tmp_path):
        t = DurableTree(QuITTree(CFG), tmp_path)
        for i in range(50):
            t.insert(i, i)
        t.close()
        (seg,) = segment_paths(tmp_path / WAL_DIRNAME)
        seg.write_bytes(seg.read_bytes()[:-3])
        recovered, report = DurableTree.recover(tmp_path, QuITTree)
        assert report.truncated_tail
        recovered.insert(777, "after-repair")
        recovered.close()
        again, report2 = DurableTree.recover(tmp_path, QuITTree)
        assert report2.clean  # repair trimmed the torn bytes for good
        assert again.get(777) == "after-repair"
        assert len(again) == 50  # 49 survivors + the new key


class TestConcurrentComposition:
    def test_durable_over_concurrent_round_trip(self, tmp_path):
        t = DurableTree(ConcurrentTree(QuITTree(CFG)), tmp_path)
        t.insert_many([(i, i) for i in range(200)])
        t.insert(1000, "x")
        t.delete(5)
        t.checkpoint()
        t.insert(1001, "y")
        expected = dict(t.tree.items())
        t.close()
        recovered, report = DurableTree.recover(
            tmp_path, QuITTree, wrap=ConcurrentTree
        )
        assert isinstance(recovered.tree, ConcurrentTree)
        assert dict(recovered.tree.items()) == expected
        assert recovered.get(1001) == "y"
        assert recovered.check() == []

    def test_threaded_writers_all_survive_recovery(self, tmp_path):
        import threading

        t = DurableTree(
            ConcurrentTree(QuITTree(CFG)), tmp_path, fsync="none"
        )

        def writer(base):
            for i in range(200):
                t.insert(base + i, base + i)

        threads = [
            threading.Thread(target=writer, args=(b,))
            for b in (0, 10_000, 20_000)
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        t.close()
        recovered, report = DurableTree.recover(
            tmp_path, QuITTree, wrap=ConcurrentTree
        )
        assert report.clean and len(recovered) == 600
        assert recovered.check() == []


class TestScrubIntegration:
    def test_recover_scrubs_by_default(self, tmp_path):
        t = DurableTree(QuITTree(CFG), tmp_path)
        t.insert_many([(i, i) for i in range(100)])
        t.close()
        _, report = DurableTree.recover(tmp_path, QuITTree)
        assert report.scrub is not None and report.scrub.clean
        _, report = DurableTree.recover(tmp_path, QuITTree, scrub=False)
        assert report.scrub is None

    def test_scrub_resets_poisoned_fast_path(self, small_config):
        tree = QuITTree(small_config)
        for i in range(500):
            tree.insert(i, i)
        # Widen the window beyond the leaf's pivot range: unsafe.
        tree._fp.low = None
        tree._fp.high = None
        tree._fp.leaf = tree.head_leaf
        report = tree.scrub()
        assert not report.clean and report.repairs == 1
        assert tree.stats.scrub_resets == 1
        # The reset pin must be immediately serviceable.
        tree.insert(10_000, "post-scrub")
        assert tree.get(10_000) == "post-scrub"
        tree.validate(check_min_fill=False)

    def test_scrub_detects_detached_leaf_and_stale_pole_prev(
        self, small_config
    ):
        from repro.core.node import LeafNode

        tree = QuITTree(small_config)
        for i in range(500):
            tree.insert(i, i)
        orphan = LeafNode()
        orphan.keys = [10**9]
        orphan.values = ["orphan"]
        tree._fp.leaf = orphan
        report = tree.scrub()
        assert any("detached" in issue for issue in report.issues)
        tree.validate(check_min_fill=False)
        # Stale pole_prev: min key above the pole's.
        tree._fp.prev = tree.tail_leaf
        tree._fp.leaf = tree.head_leaf
        tree._fp.low, tree._fp.high = tree.bounds_of_leaf(tree.head_leaf)
        report = tree.scrub()
        assert any("pole_prev" in issue for issue in report.issues)
        tree.validate(check_min_fill=False)

    def test_clean_trees_scrub_clean(self, any_tree_class, small_config):
        tree = any_tree_class(small_config)
        for i in range(300):
            tree.insert((i * 7919) % 1000, i)
        for i in range(0, 200, 3):
            tree.delete(i)
        report = tree.scrub()
        assert report.clean, report.issues
        assert tree.stats.scrub_checks == 1


class TestCheckpointGate:
    """Regression: a checkpoint interleaving between a writer's WAL
    append and its tree apply would snapshot a tree missing the op
    while truncating the WAL record that held it — the acknowledged
    write would survive only in memory and vanish at the next
    recovery.  The facade's gate makes log+apply atomic w.r.t.
    snapshot+truncate."""

    def test_checkpoint_cannot_slip_between_log_and_apply(self, tmp_path):
        t = DurableTree(
            ConcurrentTree(QuITTree(CFG)), tmp_path, fsync="none"
        )
        t.insert(1, "one")
        t.checkpoint()
        logged = threading.Event()
        release = threading.Event()
        orig_log = t.wal.log_insert

        def stalling_log(key, value=None):
            orig_log(key, value)
            logged.set()
            release.wait(timeout=5.0)

        t.wal.log_insert = stalling_log
        writer = threading.Thread(target=t.insert, args=(2, "two"))
        writer.start()
        assert logged.wait(timeout=5.0)
        # Key 2 is now logged but not yet applied.  A checkpoint
        # started here must block on the gate until the apply lands.
        ck = threading.Thread(target=t.checkpoint)
        ck.start()
        ck.join(timeout=0.3)
        checkpoint_ran_early = not ck.is_alive()
        release.set()
        writer.join(timeout=5.0)
        ck.join(timeout=5.0)
        assert not writer.is_alive() and not ck.is_alive()
        assert not checkpoint_ran_early, (
            "checkpoint completed while an op was logged but unapplied"
        )
        t.wal.log_insert = orig_log
        t.close()
        recovered, _ = DurableTree.recover(tmp_path, QuITTree, CFG)
        assert recovered.get(2) == "two", "acknowledged write lost"
        assert recovered.get(1) == "one"
        recovered.close()

    def test_concurrent_writers_and_checkpoints_lose_nothing(self, tmp_path):
        """Hammer variant of the same property: writer threads racing a
        checkpointer thread; recovery must see every acknowledged key."""
        t = DurableTree(
            ConcurrentTree(QuITTree(CFG)), tmp_path, fsync="none"
        )
        n_writers, per_writer = 4, 150
        errors = []

        def write(base):
            try:
                for i in range(per_writer):
                    t.insert(base + i, base + i)
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        def checkpoint_loop(stop):
            # Paced: a zero-sleep loop on the writer-preferring gate
            # would starve the insert threads behind per-checkpoint
            # snapshot fsyncs.
            try:
                while not stop.is_set():
                    t.checkpoint()
                    stop.wait(0.002)
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        stop = threading.Event()
        ck = threading.Thread(target=checkpoint_loop, args=(stop,))
        writers = [
            threading.Thread(target=write, args=(w * 10_000,))
            for w in range(n_writers)
        ]
        ck.start()
        for w in writers:
            w.start()
        for w in writers:
            w.join(timeout=120.0)
        stop.set()
        ck.join(timeout=120.0)
        assert not ck.is_alive() and not any(w.is_alive() for w in writers)
        assert not errors, errors
        t.close()
        recovered, _ = DurableTree.recover(tmp_path, QuITTree, CFG)
        got = reference_state(recovered.tree)
        expected = {
            w * 10_000 + i: w * 10_000 + i
            for w in range(n_writers)
            for i in range(per_writer)
        }
        assert got == expected
        recovered.close()


class TestDurableExit:
    def test_exit_flushes_on_keyboard_interrupt(self, tmp_path):
        """KeyboardInterrupt leaves a live process: __exit__ must still
        flush/fsync.  Only SimulatedCrash models a dead one."""
        t = DurableTree(
            BPlusTree(CFG), tmp_path, fsync="interval", fsync_interval=1000
        )
        with pytest.raises(KeyboardInterrupt):
            with t:
                t.insert(1, "one")
                raise KeyboardInterrupt
        assert t.wal._fh is None  # closed → final flush/fsync happened
        assert t.wal.syncs >= 1

    def test_exit_skips_close_on_simulated_crash(self, tmp_path):
        t = DurableTree(BPlusTree(CFG), tmp_path, fsync="none")
        with pytest.raises(SimulatedCrash):
            with t:
                t.insert(1, "one")
                raise SimulatedCrash("simulated crash")
        assert t.wal._fh is not None  # a dead process flushes nothing
        t.wal._fh.close()

class TestMultiSegmentTornMiddleRecovery:
    """Satellite: recovery spanning several rotated segments where the
    torn record sits in a *middle* segment — replay must stop there,
    drop the later segments' records, and repair_wal must leave a log
    that accepts (and preserves) post-repair appends."""

    def build(self, tmp_path, n=400):
        t = DurableTree(
            QuITTree(CFG), tmp_path, fsync="none", segment_bytes=1024
        )
        for i in range(n):
            t.insert(i, str(i))
        t.close()
        segs = segment_paths(tmp_path / WAL_DIRNAME)
        assert len(segs) >= 3, "workload must span >= 3 segments"
        return segs

    def test_torn_middle_segment_recovers_prefix(self, tmp_path):
        from repro.core.wal import repair_wal

        segs = self.build(tmp_path)
        middle = segs[len(segs) // 2]
        data = middle.read_bytes()
        middle.write_bytes(data[:-5])  # torn record mid-log
        recovered, report = DurableTree.recover(tmp_path, QuITTree)
        assert report.truncated_tail
        assert report.tail_bytes_dropped > 0
        # Everything before the tear replayed; everything after it is
        # gone, including the intact later segments.
        keys = [k for k, _ in recovered.items()]
        assert keys == list(range(len(keys)))
        assert 0 < len(keys) < 400
        assert recovered.check(check_min_fill=False) == []
        recovered.close()

    def test_repair_then_append_then_recover_again(self, tmp_path):
        from repro.core.wal import repair_wal, replay_wal

        segs = self.build(tmp_path)
        middle = segs[len(segs) // 2]
        middle.write_bytes(middle.read_bytes()[:-5])
        wal_dir = tmp_path / WAL_DIRNAME
        res = replay_wal(wal_dir)
        repair_wal(wal_dir, res)
        # The damaged segment is trimmed to its last valid record and
        # the later segments are deleted.
        remaining = segment_paths(wal_dir)
        assert remaining[-1] == middle
        assert middle.stat().st_size < 1024
        # First recovery after repair is clean, and new writes made
        # through it survive a *second* recovery.
        t, report = DurableTree.recover(tmp_path, QuITTree)
        assert report.clean
        base = len(t)
        t.insert(9999, "post-repair")
        t.close()
        t2, report2 = DurableTree.recover(tmp_path, QuITTree)
        assert report2.clean
        assert t2.get(9999) == "post-repair"
        assert len(t2) == base + 1
        t2.close()
