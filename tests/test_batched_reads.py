"""Equivalence tests for the batched read path.

The contract: for any probe batch, ``tree.get_many(keys)`` returns
exactly ``[tree.get(k, default) for k in keys]`` — aligned with the
input order, duplicates and misses included — and ``range_iter`` /
``count_range`` agree with ``range_query``, which itself agrees with a
filtered ``items()`` oracle.  Covered for every entry point: all tree
variants (including the QuIT ablations), BoDS near-sorted loads at
several (K, L) settings, the SWARE buffered tree with an unflushed
buffer, the concurrent wrapper, the Bε-tree, and the duplicate-key
adapter.
"""

from __future__ import annotations

import random

import pytest

from repro.betree import BeTree, BeTreeConfig
from repro.concurrency import ConcurrentTree
from repro.core import BPlusTree, DuplicateKeyIndex, QuITTree, TreeConfig
from repro.sortedness.bods import generate_keys
from repro.sware import SABPlusTree

from conftest import ALL_TREE_CLASSES

SMALL = TreeConfig(leaf_capacity=8, internal_capacity=8)


def _probe_batch(keys: list[int], seed: int = 13) -> list[int]:
    """Present keys, misses, and repeated probes, shuffled."""
    rng = random.Random(seed)
    hits = rng.sample(keys, min(len(keys), 200))
    misses = [max(keys) + 1 + i for i in range(50)] + [-5, -1]
    dupes = hits[:25] * 3
    batch = hits + misses + dupes
    rng.shuffle(batch)
    return batch


def _loaded(cls, keys):
    tree = cls(SMALL)
    for k in keys:
        tree.insert(k, k * 3)
    return tree


def _assert_read_counters(stats_diff: dict, n_probes: int) -> None:
    """Every probe in a ``get_many`` batch is accounted for exactly once
    as a chain hit, a re-descent, or a fast-path window hit."""
    assert stats_diff["read_batches"] == 1
    accounted = (
        stats_diff["read_chain_hits"]
        + stats_diff["read_redescents"]
        + stats_diff["read_fast_hits"]
    )
    assert accounted == n_probes
    # The batch's first positioning is either a descent or a fast-path
    # window hit (a reverse-loaded fast-path tree caches the head leaf,
    # which covers the smallest probe).
    assert stats_diff["read_redescents"] + stats_diff["read_fast_hits"] >= 1


def _stats_diff(stats, before: dict) -> dict:
    after = stats.as_dict()
    return {k: after[k] - before[k] for k in after}


# ----------------------------------------------------------------------
# get_many on the core variants
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "pattern",
    ["sorted", "reverse", "shuffled", "near_sorted"],
)
def test_get_many_matches_per_key(any_tree_class, pattern):
    n = 600
    rng = random.Random(5)
    keys = {
        "sorted": list(range(n)),
        "reverse": list(reversed(range(n))),
        "shuffled": rng.sample(range(n), n),
        "near_sorted": list(range(n)),
    }[pattern]
    if pattern == "near_sorted":
        for _ in range(n // 20):
            i, j = rng.randrange(n), rng.randrange(n)
            keys[i], keys[j] = keys[j], keys[i]
    tree = _loaded(any_tree_class, keys)
    probes = _probe_batch(keys)
    expected = [tree.get(k, default="miss") for k in probes]

    before = tree.stats.as_dict()
    got = tree.get_many(probes, default="miss")

    assert got == expected
    _assert_read_counters(_stats_diff(tree.stats, before), len(probes))


@pytest.mark.parametrize("k_frac,l_frac", [(0.0, 0.0), (0.05, 0.05), (0.25, 0.25), (1.0, 1.0)])
def test_get_many_on_bods_streams(any_tree_class, k_frac, l_frac):
    """BoDS-generated loads across the sortedness spectrum, from fully
    sorted (K=L=0) to fully scrambled (K=L=100%)."""
    keys = [int(k) for k in generate_keys(2_000, k_frac, l_frac, seed=9)]
    tree = _loaded(any_tree_class, keys)
    probes = _probe_batch(keys)
    expected = [tree.get(k) for k in probes]
    assert tree.get_many(probes) == expected


def test_get_many_empty_tree_and_empty_batch(any_tree_class):
    tree = any_tree_class(SMALL)
    assert tree.get_many([]) == []
    assert tree.get_many([1, 2, 3], default=0) == [0, 0, 0]
    tree.insert(5, "x")
    assert tree.get_many([]) == []
    assert tree.get_many(iter([4, 5, 6])) == [None, "x", None]


def test_get_many_after_deletes(any_tree_class):
    """Lazy deletion (QuIT) leaves empty leaves in the chain; the batched
    reader must not serve stale entries or lose live ones."""
    keys = list(range(500))
    tree = _loaded(any_tree_class, keys)
    rng = random.Random(3)
    gone = rng.sample(keys, 250)
    for k in gone:
        assert tree.delete(k)
    probes = _probe_batch(keys)
    expected = [tree.get(k, default="miss") for k in probes]
    assert tree.get_many(probes, default="miss") == expected


def test_get_many_fast_path_window_hits(fastpath_tree_class):
    """Probes inside the cached fast-path leaf's window are served
    without a descent and counted as read_fast_hits."""
    tree = fastpath_tree_class(SMALL)
    for k in range(200):
        tree.insert(k, k)
    fp_leaf = tree._fp.leaf
    assert fp_leaf is not None and fp_leaf.keys
    in_window = list(fp_leaf.keys)

    before = tree.stats.as_dict()
    # Descending probe order defeats the ascending chain walk, forcing
    # each reposition through the fast-path window check.
    got = tree.get_many(list(reversed(in_window)))
    diff = _stats_diff(tree.stats, before)
    assert got == list(reversed(in_window))
    assert diff["read_fast_hits"] >= 1

    # Per-key get() also takes the shortcut for in-window probes.
    before = tree.stats.as_dict()
    assert tree.get(in_window[-1]) == in_window[-1]
    diff = _stats_diff(tree.stats, before)
    assert diff["read_fast_hits"] == 1
    assert diff["read_fast_misses"] == 0

    # An out-of-window probe counts a miss and falls back to descent.
    before = tree.stats.as_dict()
    assert tree.get(-10) is None
    assert _stats_diff(tree.stats, before)["read_fast_misses"] == 1


# ----------------------------------------------------------------------
# range_iter / range_query / count_range
# ----------------------------------------------------------------------

RANGE_BOUNDS = [(-10, 700), (0, 0), (100, 101), (250, 400), (595, 9000)]


@pytest.mark.parametrize("start,end", RANGE_BOUNDS)
def test_range_paths_agree(any_tree_class, start, end):
    keys = random.Random(1).sample(range(600), 600)
    tree = _loaded(any_tree_class, keys)
    oracle = [(k, v) for k, v in tree.items() if start <= k < end]

    assert tree.range_query(start, end) == oracle
    assert list(tree.range_iter(start, end)) == oracle
    assert tree.count_range(start, end) == len(oracle)


def test_range_iter_is_lazy(any_tree_class):
    """Abandoning the iterator early must not walk the whole chain."""
    tree = _loaded(any_tree_class, list(range(2_000)))
    it = tree.range_iter(0, 2_000)
    before = tree.stats.leaf_accesses
    first = [next(it) for _ in range(3)]
    assert first == [(0, 0), (1, 3), (2, 6)]
    # Three entries sit in the first leaf: no chain advance needed.
    assert tree.stats.leaf_accesses - before <= 1


def test_range_paths_after_deletes(any_tree_class):
    tree = _loaded(any_tree_class, list(range(400)))
    for k in range(0, 400, 3):
        tree.delete(k)
    oracle = [(k, v) for k, v in tree.items() if 50 <= k < 350]
    assert tree.range_query(50, 350) == oracle
    assert list(tree.range_iter(50, 350)) == oracle
    assert tree.count_range(50, 350) == len(oracle)


def test_delete_range_uses_lazy_iter(any_tree_class):
    tree = _loaded(any_tree_class, list(range(300)))
    removed = tree.delete_range(100, 200)
    assert removed == 100
    assert tree.count_range(0, 300) == 200
    assert all(tree.get(k) is None for k in range(100, 200))
    tree.validate(check_min_fill=False)


# ----------------------------------------------------------------------
# SWARE
# ----------------------------------------------------------------------


def _sware_fixture():
    """SWARE tree with flushed history AND a live unflushed buffer whose
    entries shadow older tree values."""
    sa = SABPlusTree(SMALL, buffer_capacity=64, page_capacity=16)
    for k in range(500):
        sa.insert(k, k)
    sa.flush()
    for k in range(450, 520):  # overwrite tail + extend, stays buffered
        sa.insert(k, -k)
    assert len(sa.buffer) > 0
    return sa


def test_sware_get_many_matches_per_key():
    sa = _sware_fixture()
    probes = _probe_batch(list(range(520)))
    expected = [sa.get(k, default="miss") for k in probes]
    assert sa.get_many(probes, default="miss") == expected
    # Shadowing: buffered overwrites win over flushed values.
    assert sa.get_many([460])[0] == -460


def test_sware_get_many_bloom_short_circuit():
    sa = _sware_fixture()
    all_missing = [10_000 + i for i in range(64)]
    before = sa.buffer_stats.bloom_negative
    sa.get_many(all_missing)
    # Every probe was rejected by a Bloom filter without a page search.
    assert sa.buffer_stats.bloom_negative > before


def test_sware_range_paths_agree():
    sa = _sware_fixture()
    oracle = [(k, v) for k, v in sa.items() if 430 <= k < 510]
    assert sa.range_query(430, 510) == oracle
    assert list(sa.range_iter(430, 510)) == oracle
    assert sa.count_range(430, 510) == len(oracle)


def test_sware_get_many_empty_buffer():
    sa = SABPlusTree(SMALL, buffer_capacity=64)
    for k in range(100):
        sa.insert(k, k)
    sa.flush()
    probes = [3, 99, 100, -1, 3]
    assert sa.get_many(probes) == [3, 99, None, None, 3]


# ----------------------------------------------------------------------
# ConcurrentTree
# ----------------------------------------------------------------------


def _concurrent_fixture():
    ct = ConcurrentTree(QuITTree(SMALL))
    for k in random.Random(2).sample(range(600), 600):
        ct.insert(k, k * 2)
    for k in range(0, 600, 5):
        ct.delete(k)
    return ct


def test_concurrent_get_many_matches_per_key():
    ct = _concurrent_fixture()
    probes = _probe_batch(list(range(600)))
    expected = [ct.get(k, default="miss") for k in probes]
    before = ct.tree.stats.as_dict()
    got = ct.get_many(probes, default="miss")
    assert got == expected
    diff = _stats_diff(ct.tree.stats, before)
    assert diff["read_batches"] == 1
    assert diff["read_chain_hits"] + diff["read_redescents"] == len(probes)


@pytest.mark.parametrize("chunk_size", [1, 7, 256])
def test_concurrent_range_paths_agree(chunk_size):
    ct = _concurrent_fixture()
    oracle = [
        (k, v) for k, v in ct.tree.items() if 100 <= k < 480
    ]
    assert ct.range_query(100, 480) == oracle
    assert list(ct.range_iter(100, 480, chunk_size=chunk_size)) == oracle
    assert ct.count_range(100, 480) == len(oracle)


def test_concurrent_reads_under_writers():
    """Batched readers racing real writer threads must only ever see
    values some write actually produced, for every key probed."""
    import threading

    ct = ConcurrentTree(QuITTree(TreeConfig(leaf_capacity=16, internal_capacity=16)))
    for k in range(1_000):
        ct.insert(k, 0)
    stop = threading.Event()
    errors: list[str] = []

    def writer():
        v = 1
        while not stop.is_set():
            for k in range(0, 1_000, 17):
                ct.insert(k, v)
            v += 1

    def reader():
        probes = list(range(1_000))
        while not stop.is_set():
            got = ct.get_many(probes)
            for k, v in zip(probes, got):
                if v is None:
                    errors.append(f"lost key {k}")
                    return
            list(ct.range_iter(200, 800, chunk_size=64))

    threads = [threading.Thread(target=writer)] + [
        threading.Thread(target=reader) for _ in range(2)
    ]
    for t in threads:
        t.start()
    import time

    time.sleep(0.5)
    stop.set()
    for t in threads:
        t.join()
    assert not errors, errors


# ----------------------------------------------------------------------
# Bε-tree
# ----------------------------------------------------------------------


def _betree_fixture():
    """Bε-tree with entries at every resolution stage: flushed to
    leaves, pending in interior buffers, and deleted via tombstones
    that are still buffered."""
    bt = BeTree(BeTreeConfig(leaf_capacity=8, fanout=4, buffer_capacity=12))
    for k in random.Random(4).sample(range(500), 500):
        bt.insert(k, k + 1)
    for k in range(0, 500, 7):
        bt.delete(k)
    for k in range(100, 120):  # overwrites likely still buffered
        bt.insert(k, -k)
    return bt


def test_betree_get_many_matches_per_key():
    bt = _betree_fixture()
    probes = _probe_batch(list(range(500)))
    expected = [bt.get(k, default="miss") for k in probes]
    assert bt.get_many(probes, default="miss") == expected


def test_betree_get_many_resolves_buffered_messages():
    bt = BeTree(BeTreeConfig(leaf_capacity=8, fanout=4, buffer_capacity=12))
    for k in range(50):
        bt.insert(k, k)
    bt.insert(10, "fresh")  # buffered overwrite
    bt.delete(11)  # buffered tombstone
    assert bt.get_many([10, 11, 12], default="miss") == ["fresh", "miss", 12]


def test_betree_range_paths_agree():
    bt = _betree_fixture()
    oracle = bt.range_query(50, 450)
    assert list(bt.range_iter(50, 450)) == oracle
    assert bt.count_range(50, 450) == len(oracle)


# ----------------------------------------------------------------------
# DuplicateKeyIndex
# ----------------------------------------------------------------------


def _dupe_fixture():
    idx = DuplicateKeyIndex(config=SMALL)
    rng = random.Random(6)
    for i in range(800):
        idx.insert(rng.randrange(120), i)  # heavy duplication
    return idx


def test_duplicates_get_many_matches_per_key():
    idx = _dupe_fixture()
    probes = _probe_batch(list(range(120)))
    expected = [idx.get(k, default="miss") for k in probes]
    before = idx.stats.as_dict()
    got = idx.get_many(probes, default="miss")
    assert got == expected
    assert _stats_diff(idx.stats, before)["read_batches"] == 1


def test_duplicates_get_many_after_deletes():
    idx = _dupe_fixture()
    for k in range(0, 120, 3):
        idx.delete_all(k)
    idx.delete_one(1)
    probes = _probe_batch(list(range(120)))
    expected = [idx.get(k, default="miss") for k in probes]
    assert idx.get_many(probes, default="miss") == expected


def test_duplicates_range_paths_agree():
    idx = _dupe_fixture()
    oracle = idx.range_query(20, 90)
    assert list(idx.range_iter(20, 90)) == oracle
    assert idx.count_range(20, 90) == len(oracle)
    # Values for one key stay in arrival order.
    assert idx.get_all(oracle[0][0]) == [
        v for k, v in oracle if k == oracle[0][0]
    ]
