"""Bulk operations: bulk_load, append_run, bulk_insert_run."""

import pytest

from repro.core import BPlusTree, QuITTree, TreeConfig

from conftest import validate_tree


class TestBulkLoad:
    def test_empty_input(self, small_config, any_tree_class):
        tree = any_tree_class(small_config)
        tree.bulk_load([])
        assert len(tree) == 0

    def test_loads_sorted_pairs(self, small_config, any_tree_class):
        tree = any_tree_class(small_config)
        tree.bulk_load([(k, k * 2) for k in range(500)])
        assert len(tree) == 500
        assert tree.get(123) == 246
        assert list(tree.keys()) == list(range(500))
        validate_tree(tree)

    def test_full_fill_factor_packs_leaves(self, small_config):
        tree = BPlusTree(small_config)
        tree.bulk_load([(k, k) for k in range(512)], fill_factor=1.0)
        occ = tree.occupancy()
        assert occ.avg_occupancy > 0.95

    def test_partial_fill_factor(self, small_config):
        tree = BPlusTree(small_config)
        tree.bulk_load([(k, k) for k in range(512)], fill_factor=0.5)
        occ = tree.occupancy()
        assert 0.45 <= occ.avg_occupancy <= 0.62

    def test_rejects_non_empty_tree(self, small_config):
        tree = BPlusTree(small_config)
        tree.insert(1, 1)
        with pytest.raises(ValueError):
            tree.bulk_load([(2, 2)])

    def test_rejects_unsorted(self, small_config):
        tree = BPlusTree(small_config)
        with pytest.raises(ValueError):
            tree.bulk_load([(2, 2), (1, 1)])

    def test_rejects_duplicates(self, small_config):
        tree = BPlusTree(small_config)
        with pytest.raises(ValueError):
            tree.bulk_load([(1, 1), (1, 2)])

    def test_rejects_bad_fill_factor(self, small_config):
        tree = BPlusTree(small_config)
        with pytest.raises(ValueError):
            tree.bulk_load([(1, 1)], fill_factor=0.0)
        with pytest.raises(ValueError):
            tree.bulk_load([(1, 1)], fill_factor=1.5)

    def test_single_entry(self, small_config, any_tree_class):
        tree = any_tree_class(small_config)
        tree.bulk_load([(7, "seven")])
        assert tree.get(7) == "seven"
        validate_tree(tree)

    def test_inserts_after_bulk_load(self, small_config, any_tree_class):
        tree = any_tree_class(small_config)
        tree.bulk_load([(k, k) for k in range(0, 200, 2)])
        for k in range(1, 200, 2):
            tree.insert(k, k)
        assert list(tree.keys()) == list(range(200))
        validate_tree(tree)

    def test_fastpath_repinned_to_tail(self, small_config, fastpath_tree_class):
        tree = fastpath_tree_class(small_config)
        tree.bulk_load([(k, k) for k in range(100)])
        # Appends after a bulk load should ride the fast path.
        before = tree.stats.fast_inserts
        for k in range(100, 150):
            tree.insert(k, k)
        assert tree.stats.fast_inserts - before == 50
        validate_tree(tree)


class TestAppendRun:
    def test_appends_beyond_max(self, small_config):
        tree = BPlusTree(small_config)
        for k in range(100):
            tree.insert(k, k)
        n = tree.append_run([(k, k) for k in range(100, 200)])
        assert n == 100
        assert list(tree.keys()) == list(range(200))
        validate_tree(tree)

    def test_append_into_empty(self, small_config):
        tree = BPlusTree(small_config)
        tree.append_run([(k, k) for k in range(50)])
        assert list(tree.keys()) == list(range(50))
        validate_tree(tree)

    def test_rejects_key_at_or_below_max(self, small_config):
        tree = BPlusTree(small_config)
        tree.insert(10, 10)
        with pytest.raises(ValueError):
            tree.append_run([(10, 0)])
        with pytest.raises(ValueError):
            tree.append_run([(5, 0)])

    def test_rejects_unsorted_run(self, small_config):
        tree = BPlusTree(small_config)
        with pytest.raises(ValueError):
            tree.append_run([(3, 3), (2, 2)])

    def test_packs_to_fill_factor(self, small_config):
        tree = BPlusTree(small_config)
        tree.append_run([(k, k) for k in range(400)], fill_factor=1.0)
        occ = tree.occupancy()
        assert occ.avg_occupancy > 0.9


class TestBulkInsertRun:
    def test_splice_into_middle(self, small_config):
        tree = BPlusTree(small_config)
        for k in range(0, 1000, 2):
            tree.insert(k, k)
        added = tree.bulk_insert_run([(k, -k) for k in range(1, 1000, 2)])
        assert added == 500
        assert len(tree) == 1000
        assert list(tree.keys()) == list(range(1000))
        assert tree.get(501) == -501
        validate_tree(tree)

    def test_upserts_duplicates(self, small_config):
        tree = BPlusTree(small_config)
        for k in range(100):
            tree.insert(k, "old")
        added = tree.bulk_insert_run([(k, "new") for k in range(50, 150)])
        assert added == 50
        assert tree.get(75) == "new"
        assert tree.get(25) == "old"
        validate_tree(tree)

    def test_empty_run(self, small_config):
        tree = BPlusTree(small_config)
        tree.insert(1, 1)
        assert tree.bulk_insert_run([]) == 0

    def test_into_empty_tree(self, small_config):
        tree = BPlusTree(small_config)
        added = tree.bulk_insert_run([(k, k) for k in range(300)])
        assert added == 300
        assert list(tree.keys()) == list(range(300))
        validate_tree(tree)

    def test_rejects_unsorted(self, small_config):
        tree = BPlusTree(small_config)
        with pytest.raises(ValueError):
            tree.bulk_insert_run([(2, 2), (1, 1)])

    def test_counts_segments(self, small_config):
        tree = BPlusTree(small_config)
        for k in range(0, 1000, 10):
            tree.insert(k, k)
        before = tree.stats.bulk_splice_segments
        # A contiguous run lands in few segments; scattered singles in many.
        tree.bulk_insert_run([(k, k) for k in range(2000, 2100)])
        contiguous = tree.stats.bulk_splice_segments - before
        assert contiguous <= 3
        before = tree.stats.bulk_splice_segments
        tree.bulk_insert_run([(k, k) for k in range(1, 999, 50)])
        scattered = tree.stats.bulk_splice_segments - before
        assert scattered >= 5
        validate_tree(tree)

    def test_fastpath_bounds_survive_splice(
        self, small_config, fastpath_tree_class
    ):
        tree = fastpath_tree_class(small_config)
        for k in range(200):
            tree.insert(k, k)
        # Splice a run straddling the fast-path leaf's range.
        tree.bulk_insert_run([(k, k) for k in range(150, 400)])
        for k in range(400, 500):
            tree.insert(k, k)
        assert list(tree.keys()) == list(range(500))
        validate_tree(tree)

    def test_tail_pointer_updated(self, small_config):
        tree = BPlusTree(small_config)
        for k in range(100):
            tree.insert(k, k)
        tree.bulk_insert_run([(k, k) for k in range(100, 400)])
        assert tree.tail_leaf.max_key == 399
        assert tree.max_key() == 399
