"""Regression tests for the bounded quorum wait (satellite of the
network PR): ``Primary(ack_deadline=...)`` turns a stalled replica
transport into a typed :class:`QuorumTimeoutError` instead of an
unbounded wait, and ``ack_deadline=None`` preserves the old behavior."""

import time

import pytest

from repro.core import DurableTree, QuITTree, TreeConfig
from repro.replication import (
    AckQuorumError,
    InProcessTransport,
    Primary,
    QuorumTimeoutError,
    Replica,
)
from repro.replication.transport import FetchResult

CFG = TreeConfig(leaf_capacity=8, internal_capacity=8)


class StalledTransport(InProcessTransport):
    """A transport that, once stalled, burns wall-clock on every fetch
    and never delivers progress — the shape of a half-dead link that a
    plain partition (fast ``TransportError``) does not model."""

    def __init__(self, primary, *, stall=0.05):
        super().__init__(primary)
        self.stall = stall
        self.stalled = False
        self.stalled_calls = 0

    def fetch_records(self, position, *, max_records=512, max_bytes=1 << 20):
        if self.stalled:
            self.stalled_calls += 1
            time.sleep(self.stall)
            return FetchResult(
                records=[], position=position, epoch=self.primary.epoch,
                tail=self.primary.tail_position(), lag_bytes=1,
            )
        return super().fetch_records(
            position, max_records=max_records, max_bytes=max_bytes
        )


@pytest.fixture
def cluster(tmp_path):
    def build(ack_deadline, stall=0.05):
        durable = DurableTree(QuITTree(CFG), tmp_path / "p", fsync="none")
        primary = Primary(
            durable, node_id="p", required_acks=1,
            ack_deadline=ack_deadline,
        )
        transport = StalledTransport(primary, stall=stall)
        replica = Replica(
            tmp_path / "r0", transport,
            tree_class=QuITTree, config=CFG, name="r0",
        )
        replica.bootstrap()
        primary.attach(replica)
        return primary, replica, transport

    made = []

    def factory(*a, **kw):
        out = build(*a, **kw)
        made.append(out)
        return out

    yield factory
    for primary, replica, _ in made:
        primary.close()
        replica.close()


class TestAckDeadline:
    def test_stalled_quorum_degrades_in_bounded_time(self, cluster):
        primary, replica, transport = cluster(ack_deadline=0.2, stall=0.1)
        primary.insert(1, "ok")  # healthy link: quorum confirms
        transport.stalled = True
        start = time.monotonic()
        with pytest.raises(QuorumTimeoutError) as exc:
            primary.insert(2, "stalled")
        elapsed = time.monotonic() - start
        # Unbounded would poll max_rounds x stall (~0.8s); the deadline
        # cuts it off well before that.
        assert elapsed < 0.6
        assert exc.value.acks == 0
        assert exc.value.required == 1
        assert primary.quorum_timeouts == 1
        # The write is still locally durable (same contract as
        # AckQuorumError): refused the ack, kept the data.
        assert primary.get(2) == "stalled"

    def test_quorum_timeout_is_an_ack_quorum_error(self, cluster):
        """Callers catching AckQuorumError keep working unchanged."""
        primary, replica, transport = cluster(ack_deadline=0.1)
        transport.stalled = True
        with pytest.raises(AckQuorumError):
            primary.insert(1, 1)

    def test_none_deadline_preserves_unbounded_behavior(self, cluster):
        primary, replica, transport = cluster(ack_deadline=None, stall=0.02)
        transport.stalled = True
        # Without a deadline the wait is bounded only by the replica's
        # max_rounds polling; it ends in the classic AckQuorumError,
        # never the timeout subtype.
        with pytest.raises(AckQuorumError) as exc:
            primary.insert(1, 1)
        assert not isinstance(exc.value, QuorumTimeoutError)
        assert primary.quorum_timeouts == 0
        assert transport.stalled_calls >= 1

    def test_recovery_after_heal(self, cluster):
        primary, replica, transport = cluster(ack_deadline=0.15, stall=0.1)
        transport.stalled = True
        with pytest.raises(QuorumTimeoutError):
            primary.insert(1, "during")
        transport.stalled = False
        primary.insert(2, "after")  # quorum confirms again
        assert replica.durable.get(2) == "after"
        # The stalled write replicated too once the link healed.
        assert replica.durable.get(1) == "during"


class TestDrainAcksDeadline:
    def test_drain_acks_falls_back_to_ack_deadline(self, cluster):
        primary, replica, transport = cluster(ack_deadline=0.2, stall=0.1)
        ticket = primary.submit_insert(1, 1)
        transport.stalled = True
        start = time.monotonic()
        with pytest.raises(QuorumTimeoutError):
            primary.drain_acks()
        assert time.monotonic() - start < 0.8
        assert ticket.done()  # locally durable regardless
        assert primary.quorum_timeouts == 1

    def test_drain_acks_explicit_timeout_overrides(self, cluster):
        primary, replica, transport = cluster(ack_deadline=5.0, stall=0.1)
        primary.submit_insert(1, 1)
        transport.stalled = True
        start = time.monotonic()
        with pytest.raises(QuorumTimeoutError):
            primary.drain_acks(timeout=0.2)
        assert time.monotonic() - start < 1.0

    def test_drain_acks_healthy_link_confirms(self, cluster):
        primary, replica, transport = cluster(ack_deadline=2.0)
        for i in range(20):
            primary.submit_insert(i, i)
        settled = primary.drain_acks()
        assert settled == 20
        assert primary.quorum_timeouts == 0
        assert replica.durable.get(19) == 19
