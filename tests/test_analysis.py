"""Tests for the analytical models (Eq. 1) and memory analysis."""

import pytest

from repro.analysis import (
    crossover_k,
    expected_ingest_speedup,
    ideal_fast_fraction,
    lil_expected_fast_fraction,
    memory_breakdown,
    occupancy_histogram,
    simulate_lil_fast_fraction,
    space_reduction,
    tail_expected_fast_fraction,
)
from repro.core import BPlusTree, QuITTree, TreeConfig

CFG = TreeConfig(leaf_capacity=16, internal_capacity=16)


class TestEq1:
    def test_endpoints(self):
        assert lil_expected_fast_fraction(0.0) == 1.0
        assert lil_expected_fast_fraction(1.0) == 0.0

    def test_known_values(self):
        # §3: 98% fast-inserts at k=1%, ~90% at k=5%.
        assert lil_expected_fast_fraction(0.01) == pytest.approx(0.9801)
        assert lil_expected_fast_fraction(0.05) == pytest.approx(0.9025)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            lil_expected_fast_fraction(-0.1)
        with pytest.raises(ValueError):
            lil_expected_fast_fraction(1.1)

    def test_simulation_matches_closed_form(self):
        for k in (0.0, 0.05, 0.3, 0.7):
            sim = simulate_lil_fast_fraction(k, n=200_000, seed=1)
            assert sim == pytest.approx(
                lil_expected_fast_fraction(k), abs=0.01
            )


class TestIdealAndTail:
    def test_ideal_linear(self):
        assert ideal_fast_fraction(0.25) == 0.75

    def test_ideal_dominates_lil(self):
        for k10 in range(1, 10):
            k = k10 / 10
            assert ideal_fast_fraction(k) > lil_expected_fast_fraction(k)

    def test_tail_collapses_quickly(self):
        sorted_case = tail_expected_fast_fraction(0.0, 100_000, 64)
        slightly = tail_expected_fast_fraction(0.01, 100_000, 64)
        assert sorted_case == 1.0
        assert slightly < 0.7

    def test_tail_below_ideal(self):
        for k10 in range(1, 11):
            k = k10 / 10
            assert (
                tail_expected_fast_fraction(k, 100_000, 64)
                <= ideal_fast_fraction(k) + 1e-12
            )


class TestSpeedupModel:
    def test_all_fast_gives_full_ratio(self):
        assert expected_ingest_speedup(1.0, 3.5) == pytest.approx(3.5)

    def test_no_fast_gives_parity(self):
        assert expected_ingest_speedup(0.0, 3.5) == pytest.approx(1.0)

    def test_monotone_in_fast_fraction(self):
        values = [expected_ingest_speedup(f / 10) for f in range(11)]
        assert values == sorted(values)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            expected_ingest_speedup(1.5)
        with pytest.raises(ValueError):
            expected_ingest_speedup(0.5, 0.0)


class TestCrossover:
    def test_finds_crossing(self):
        grid = [0.0, 0.1, 0.2, 0.3]
        a = [(k, 1.0 - k) for k in grid]
        b = [(k, 0.85) for k in grid]
        assert crossover_k(a, b) == 0.2

    def test_none_when_dominant(self):
        grid = [0.0, 0.1]
        a = [(k, 2.0) for k in grid]
        b = [(k, 1.0) for k in grid]
        assert crossover_k(a, b) is None

    def test_rejects_mismatched_grid(self):
        with pytest.raises(ValueError):
            crossover_k([(0.0, 1)], [(0.5, 1)])


class TestMemoryAnalysis:
    def _grown(self, cls, n=2000):
        tree = cls(CFG)
        for k in range(n):
            tree.insert(k, k)
        return tree

    def test_histogram_totals(self):
        tree = self._grown(BPlusTree)
        hist = occupancy_histogram(tree, n_buckets=10)
        assert hist.total == tree.occupancy().leaf_count
        assert len(hist.edges) == 10

    def test_histogram_classical_concentrated_at_half(self):
        tree = self._grown(BPlusTree)
        hist = occupancy_histogram(tree, n_buckets=10)
        # Sorted ingestion: nearly every leaf sits in the 50% bucket.
        half_bucket = hist.counts[4] + hist.counts[5]
        assert half_bucket > 0.9 * hist.total

    def test_histogram_quit_concentrated_high(self):
        tree = self._grown(QuITTree)
        hist = occupancy_histogram(tree, n_buckets=10)
        assert hist.counts[-1] + hist.counts[-2] > 0.8 * hist.total

    def test_histogram_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            occupancy_histogram(self._grown(BPlusTree), n_buckets=0)

    def test_space_reduction_sorted(self):
        classical = self._grown(BPlusTree)
        quit_tree = self._grown(QuITTree)
        assert space_reduction(classical, quit_tree) > 1.5

    def test_space_reduction_rejects_empty(self):
        with pytest.raises(ValueError):
            space_reduction(self._grown(BPlusTree), BPlusTree(CFG))

    def test_breakdown_sums_to_memory_bytes(self):
        tree = self._grown(BPlusTree)
        breakdown = memory_breakdown(tree)
        assert breakdown.total == tree.memory_bytes()
        assert breakdown.leaf_bytes > breakdown.internal_bytes
