"""The fault-injection framework itself: arming semantics, modes,
scoping, and the registry contract the durability layer relies on."""

import pytest

from repro.testing import (
    KNOWN_FAILPOINTS,
    FailpointError,
    SimulatedCrash,
    failpoints,
)


class TestRegistry:
    def test_known_names_are_stable_and_nonempty(self):
        assert "wal.before_fsync" in KNOWN_FAILPOINTS
        assert "snapshot.after_tmp_write" in KNOWN_FAILPOINTS
        assert "checkpoint.before_truncate" in KNOWN_FAILPOINTS
        assert failpoints.registered() == KNOWN_FAILPOINTS

    def test_unknown_name_rejected_at_arming(self):
        with pytest.raises(ValueError, match="unknown failpoint"):
            with failpoints.active("wal.no_such_point"):
                pass

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown failpoint mode"):
            with failpoints.active("wal.before_fsync", mode="explode"):
                pass

    def test_double_arming_rejected(self):
        with failpoints.active("wal.before_fsync"):
            with pytest.raises(RuntimeError, match="already armed"):
                with failpoints.active("wal.before_fsync"):
                    pass


class TestFiring:
    def test_unarmed_fire_is_a_no_op(self):
        failpoints.fire("wal.before_fsync")  # nothing armed: no raise

    def test_raise_mode(self):
        with failpoints.active("wal.before_fsync", mode="raise"):
            with pytest.raises(FailpointError):
                failpoints.fire("wal.before_fsync")

    def test_crash_mode_bypasses_except_exception(self):
        with failpoints.active("wal.before_fsync", mode="crash"):
            with pytest.raises(SimulatedCrash):
                try:
                    failpoints.fire("wal.before_fsync")
                except Exception:  # durability-layer cleanup can't eat it
                    pytest.fail("SimulatedCrash was caught as Exception")

    def test_scope_disarms_on_exit(self):
        with failpoints.active("wal.before_fsync"):
            assert failpoints.armed() == ("wal.before_fsync",)
        assert failpoints.armed() == ()
        failpoints.fire("wal.before_fsync")  # disarmed again

    def test_hits_before_skips_early_hits(self):
        with failpoints.active(
            "wal.before_fsync", mode="raise", hits_before=2
        ) as state:
            failpoints.fire("wal.before_fsync")
            failpoints.fire("wal.before_fsync")
            assert state.fired == 0
            with pytest.raises(FailpointError):
                failpoints.fire("wal.before_fsync")
            assert state.fired == 1

    def test_other_points_unaffected_while_one_is_armed(self):
        with failpoints.active("wal.before_fsync", mode="raise"):
            failpoints.fire("checkpoint.before_truncate")  # no raise

    def test_probabilistic_mode_is_seeded_and_partial(self):
        fired = 0
        with failpoints.active(
            "wal.before_fsync", mode="probability",
            probability=0.5, seed=7,
        ) as state:
            for _ in range(100):
                try:
                    failpoints.fire("wal.before_fsync")
                except SimulatedCrash:
                    fired += 1
        assert fired == state.fired
        assert 20 < fired < 80  # seeded coin, not all-or-nothing

    def test_hit_counting_while_armed(self):
        failpoints.reset()
        with failpoints.active(
            "wal.before_fsync", mode="raise", hits_before=10**9
        ):
            failpoints.fire("wal.before_fsync")
            failpoints.fire("wal.before_fsync")
            failpoints.fire("checkpoint.before_truncate")
            assert failpoints.hit_count("wal.before_fsync") == 2
            assert failpoints.hit_count("checkpoint.before_truncate") == 1
        failpoints.reset()
        assert failpoints.hit_count("wal.before_fsync") == 0

    def test_fire_rejects_unknown_name_while_armed(self):
        """A renamed call site must not silently detach its tests: any
        armed run surfaces the unregistered name immediately."""
        with failpoints.active(
            "wal.before_fsync", mode="raise", hits_before=10**9
        ):
            with pytest.raises(ValueError, match="unregistered failpoint"):
                failpoints.fire("wal.renamed_typo_site")

    def test_fire_unknown_name_noop_when_nothing_armed(self):
        # The inactive fast path stays a single dict check; validation
        # only runs while some failpoint is armed (i.e. under test).
        failpoints.fire("wal.renamed_typo_site")

class TestReplicationSites:
    def test_replication_failpoints_are_registered(self):
        for name in (
            "repl.snapshot_fetch",
            "repl.ship_record",
            "repl.apply_record",
            "repl.promote",
            "repl.fence",
            "repl.health_check",
            "repl.transport.drop",
            "repl.transport.delay",
            "repl.transport.reorder",
        ):
            assert name in KNOWN_FAILPOINTS

    def test_hit_counts_snapshot(self):
        failpoints.reset()
        with failpoints.active(
            "repl.ship_record", mode="raise", hits_before=10**9
        ):
            failpoints.fire("repl.ship_record")
            failpoints.fire("repl.apply_record")
            counts = failpoints.hit_counts()
        assert counts["repl.ship_record"] == 1
        assert counts["repl.apply_record"] == 1
        # The snapshot is detached from live state.
        counts["repl.ship_record"] = 999
        failpoints.reset()
        assert failpoints.hit_counts() == {}


class TestThreadSafety:
    """Satellite: counters and arming race-free under concurrent fire()
    from many threads (the concurrency layer fires these sites)."""

    def test_concurrent_fires_count_exactly(self):
        import threading

        failpoints.reset()
        n_threads, per_thread = 8, 500
        start = threading.Barrier(n_threads)

        def worker():
            start.wait()
            for _ in range(per_thread):
                failpoints.fire("repl.apply_record")

        with failpoints.active(
            "repl.apply_record", mode="raise", hits_before=10**9
        ):
            threads = [
                threading.Thread(target=worker) for _ in range(n_threads)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert failpoints.hit_count("repl.apply_record") == (
                n_threads * per_thread
            )

    def test_concurrent_hits_before_fires_exactly_once_each_window(self):
        import threading

        failpoints.reset()
        n_threads, per_thread = 8, 200
        total = n_threads * per_thread
        errors = []
        start = threading.Barrier(n_threads)

        def worker():
            start.wait()
            for _ in range(per_thread):
                try:
                    failpoints.fire("repl.ship_record")
                except FailpointError:
                    errors.append(1)

        with failpoints.active(
            "repl.ship_record", mode="raise", hits_before=total // 2
        ) as state:
            threads = [
                threading.Thread(target=worker) for _ in range(n_threads)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        # Every hit past the threshold raised; none lost to a race.
        assert len(errors) == total - total // 2
        assert state.fired == len(errors)

    def test_concurrent_arm_disarm_with_firing_threads(self):
        import threading

        failpoints.reset()
        stop = threading.Event()

        def firer():
            while not stop.is_set():
                try:
                    failpoints.fire("repl.health_check")
                except FailpointError:
                    pass

        threads = [threading.Thread(target=firer) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            for _ in range(50):
                with failpoints.active("repl.health_check", mode="raise"):
                    pass
        finally:
            stop.set()
            for t in threads:
                t.join()
        assert failpoints.armed() == ()
