"""Every example script must run cleanly end-to-end (subprocess, so each
example is exercised exactly as a user would run it)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_SCRIPTS = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert "quickstart.py" in EXAMPLE_SCRIPTS
    assert len(EXAMPLE_SCRIPTS) >= 3


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), f"{script} produced no output"
