"""Failure injection: validate() must catch every class of structural
corruption it claims to check.

Violations are raised as :class:`TreeInvariantError` (explicitly, not
via ``assert``), so this suite is also run under ``python -O`` in CI to
lock in that validation survives optimized mode.
"""

import pytest

from repro.core import BPlusTree, QuITTree, TreeConfig, TreeInvariantError
from repro.core.node import GappedLeafNode, InternalNode


@pytest.fixture
def tree(small_config):
    t = BPlusTree(small_config)
    for k in range(500):
        t.insert(k, k)
    t.validate()
    return t


def first_internal(tree) -> InternalNode:
    node = tree.root
    assert not node.is_leaf
    return node


def corrupt_keys(leaf, mutate) -> None:
    """Apply ``mutate`` to the leaf's key list and write it back through
    the layout (the gapped layout's ``keys`` property is a packed copy,
    so in-place mutation alone would not reach the slot arrays)."""
    keys = leaf.keys
    mutate(keys)
    leaf.keys = keys


def drop_one_value(leaf) -> None:
    """Make the physical value storage one element short of the keys."""
    if isinstance(leaf, GappedLeafNode):
        leaf.svals.pop()  # breaks the slab-length invariant
    else:
        leaf.values.pop()


class TestValidateCatchesCorruption:
    def test_unsorted_leaf_keys(self, tree):
        leaf = tree.head_leaf

        def swap(keys):
            keys[0], keys[1] = keys[1], keys[0]

        corrupt_keys(leaf, swap)
        with pytest.raises(TreeInvariantError):
            tree.validate()

    def test_key_outside_pivot_range(self, tree):
        leaf = tree.head_leaf.next

        def bump(keys):
            keys[-1] = 10_000_000

        corrupt_keys(leaf, bump)
        with pytest.raises(TreeInvariantError):
            tree.validate()

    def test_broken_parent_pointer(self, tree):
        leaf = tree.head_leaf.next
        leaf.parent = None
        with pytest.raises(TreeInvariantError):
            tree.validate()

    def test_broken_next_link(self, tree):
        leaf = tree.head_leaf
        leaf.next = leaf.next.next  # skip one leaf
        with pytest.raises(TreeInvariantError):
            tree.validate()

    def test_broken_prev_link(self, tree):
        leaf = tree.head_leaf.next
        leaf.prev = None
        with pytest.raises(TreeInvariantError):
            tree.validate()

    def test_size_drift(self, tree):
        tree._size += 1
        with pytest.raises(TreeInvariantError):
            tree.validate()

    def test_height_drift(self, tree):
        tree._height += 1
        with pytest.raises(TreeInvariantError):
            tree.validate()

    def test_values_keys_length_mismatch(self, tree):
        leaf = tree.head_leaf
        drop_one_value(leaf)
        with pytest.raises(TreeInvariantError):
            tree.validate()

    def test_overfull_leaf(self, tree):
        leaf = tree.tail_leaf
        leaf.keys = leaf.keys + [10_000 + extra for extra in range(20)]
        leaf.values = leaf.values + list(range(20))
        tree._size += 20
        with pytest.raises(TreeInvariantError):
            tree.validate()

    def test_underfull_leaf_with_strict_min_fill(self, tree):
        leaf = tree.head_leaf
        removed = 0
        while leaf.size > 1:
            leaf.remove_at(0)
            removed += 1
        tree._size -= removed
        with pytest.raises(TreeInvariantError):
            tree.validate(check_min_fill=True)
        # Relaxed mode tolerates it (QuIT's variable split relies on
        # this allowance).
        tree.validate(check_min_fill=False)

    def test_internal_child_count_mismatch(self, tree):
        node = first_internal(tree)
        node.keys.append(node.keys[-1] + 1)
        with pytest.raises(TreeInvariantError):
            tree.validate()

    def test_duplicate_key_across_leaves(self, tree):
        second = tree.head_leaf.next
        dup = tree.head_leaf.min_key

        def plant(keys):
            keys[0] = dup

        corrupt_keys(second, plant)
        with pytest.raises(TreeInvariantError):
            tree.validate()

    def test_error_is_catchable_as_assertion_error(self, tree):
        # Pre-existing callers treat validation failures as
        # AssertionError; the new type must remain compatible.
        tree._size += 1
        with pytest.raises(AssertionError):
            tree.validate()

    def test_validate_works_without_assert_statements(self, tree):
        # The guarantee behind the CI `python -O` job: an explicit raise,
        # not an ``assert``, carries every violation.
        import inspect

        src = inspect.getsource(BPlusTree._validate_node)
        assert "assert " not in src
        tree._size += 1
        with pytest.raises(TreeInvariantError):
            tree.validate()


class TestCheckReportsAllViolations:
    """validate(report=True) / check(): collect instead of raising."""

    def test_healthy_tree_reports_nothing(self, tree):
        assert tree.check() == []
        assert tree.validate(report=True) == []

    def test_collects_multiple_independent_violations(self, tree):
        tree._size += 1
        tree._height += 1
        leaf = tree.head_leaf

        def swap(keys):
            keys[0], keys[1] = keys[1], keys[0]

        corrupt_keys(leaf, swap)
        violations = tree.check()
        assert len(violations) >= 3
        text = "\n".join(violations)
        assert "size mismatch" in text
        assert "height drifted" in text
        assert "unsorted keys" in text
        # validate() without report still raises on the first.
        with pytest.raises(TreeInvariantError):
            tree.validate()

    def test_report_mode_never_raises_on_deep_corruption(self, tree):
        node = first_internal(tree)
        node.children[0].parent = None
        node.keys.append(node.keys[-1] + 1)
        drop_one_value(tree.tail_leaf)
        violations = tree.check()
        assert violations  # survey completed despite the mess

    def test_report_mode_terminates_on_leaf_chain_cycle(self, tree):
        leaf = tree.head_leaf
        leaf.next.next = leaf  # 2-cycle at the head of the chain
        violations = tree.check()
        assert any("cycle" in v or "chain" in v for v in violations)

    def test_min_fill_flag_respected_in_report_mode(self, tree):
        leaf = tree.head_leaf
        removed = 0
        while leaf.size > 1:
            leaf.remove_at(0)
            removed += 1
        tree._size -= removed
        assert any("min fill" in v for v in tree.check(check_min_fill=True))
        assert not any(
            "min fill" in v for v in tree.check(check_min_fill=False)
        )


class TestValidateAcceptsHealthyQuIT:
    def test_quit_after_mixed_workload(self, small_config):
        tree = QuITTree(small_config)
        for k in range(0, 1000, 2):
            tree.insert(k, k)
        for k in range(1, 1000, 2):
            tree.insert(k, k)
        for k in range(0, 500, 3):
            tree.delete(k)
        tree.validate(check_min_fill=False)
        assert tree.check(check_min_fill=False) == []
