"""Failure injection: validate() must catch every class of structural
corruption it claims to check."""

import pytest

from repro.core import BPlusTree, QuITTree, TreeConfig
from repro.core.node import InternalNode


@pytest.fixture
def tree(small_config):
    t = BPlusTree(small_config)
    for k in range(500):
        t.insert(k, k)
    t.validate()
    return t


def first_internal(tree) -> InternalNode:
    node = tree.root
    assert not node.is_leaf
    return node


class TestValidateCatchesCorruption:
    def test_unsorted_leaf_keys(self, tree):
        leaf = tree.head_leaf
        leaf.keys[0], leaf.keys[1] = leaf.keys[1], leaf.keys[0]
        with pytest.raises(AssertionError):
            tree.validate()

    def test_key_outside_pivot_range(self, tree):
        leaf = tree.head_leaf.next
        leaf.keys[-1] = 10_000_000
        with pytest.raises(AssertionError):
            tree.validate()

    def test_broken_parent_pointer(self, tree):
        leaf = tree.head_leaf.next
        leaf.parent = None
        with pytest.raises(AssertionError):
            tree.validate()

    def test_broken_next_link(self, tree):
        leaf = tree.head_leaf
        leaf.next = leaf.next.next  # skip one leaf
        with pytest.raises(AssertionError):
            tree.validate()

    def test_broken_prev_link(self, tree):
        leaf = tree.head_leaf.next
        leaf.prev = None
        with pytest.raises(AssertionError):
            tree.validate()

    def test_size_drift(self, tree):
        tree._size += 1
        with pytest.raises(AssertionError):
            tree.validate()

    def test_height_drift(self, tree):
        tree._height += 1
        with pytest.raises(AssertionError):
            tree.validate()

    def test_values_keys_length_mismatch(self, tree):
        leaf = tree.head_leaf
        leaf.values.pop()
        with pytest.raises(AssertionError):
            tree.validate()

    def test_overfull_leaf(self, tree):
        leaf = tree.tail_leaf
        for extra in range(20):
            leaf.keys.append(10_000 + extra)
            leaf.values.append(extra)
        tree._size += 20
        with pytest.raises(AssertionError):
            tree.validate()

    def test_underfull_leaf_with_strict_min_fill(self, tree):
        leaf = tree.head_leaf
        removed = 0
        while leaf.size > 1:
            leaf.remove_at(0)
            removed += 1
        tree._size -= removed
        with pytest.raises(AssertionError):
            tree.validate(check_min_fill=True)
        # Relaxed mode tolerates it (QuIT's variable split relies on
        # this allowance).
        tree.validate(check_min_fill=False)

    def test_internal_child_count_mismatch(self, tree):
        node = first_internal(tree)
        node.keys.append(node.keys[-1] + 1)
        with pytest.raises(AssertionError):
            tree.validate()

    def test_duplicate_key_across_leaves(self, tree):
        second = tree.head_leaf.next
        dup = tree.head_leaf.keys[0]
        second.keys[0] = dup
        with pytest.raises(AssertionError):
            tree.validate()


class TestValidateAcceptsHealthyQuIT:
    def test_quit_after_mixed_workload(self, small_config):
        tree = QuITTree(small_config)
        for k in range(0, 1000, 2):
            tree.insert(k, k)
        for k in range(1, 1000, 2):
            tree.insert(k, k)
        for k in range(0, 500, 3):
            tree.delete(k)
        tree.validate(check_min_fill=False)
