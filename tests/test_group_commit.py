"""Group-commit pipeline: batched fsync, submit/await acks, quorum
amortization, and failure semantics.

The crash-safety *property* (no lost acked write, no phantom) lives in
tests/test_crash_recovery_property.py's group sweep; this file covers
the machinery around it: batching actually coalesces fsyncs, tickets
carry results, interval/none acks are visibly unsynced, abort models
process death, a failing flusher never acks, and the Primary confirms a
whole pipelined batch with one quorum round.
"""

import threading

import pytest

from repro.concurrency import ConcurrentTree, sanitizer
from repro.core import DurableTree, QuITTree, TreeConfig
from repro.core.wal import (
    CommitTicket,
    WALDeadError,
    WALError,
    WriteAheadLog,
    replay_wal,
)
from repro.replication import InProcessTransport, Primary, Replica
from repro.testing import FailpointError, SimulatedCrash, failpoints

CFG = TreeConfig(leaf_capacity=16, internal_capacity=16)


def make_group_tree(directory, **kw):
    return DurableTree(
        ConcurrentTree(QuITTree(CFG)), directory, fsync="group", **kw
    )


class TestGroupWAL:
    def test_multi_writer_batching_coalesces_fsyncs(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="group")
        n, writers = 200, 8

        def work(base):
            for i in range(n):
                wal.log_insert(base + i, i)

        threads = [
            threading.Thread(target=work, args=(w * 10_000,))
            for w in range(writers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert wal.records_appended == n * writers
        # The whole point: far fewer fsyncs than synchronous appends.
        assert wal.syncs < wal.records_appended
        assert wal.group_batches == wal.syncs
        assert wal.group_batch_records == n * writers
        assert 1 <= wal.group_batch_max <= n * writers
        # Group acks are durable acks: nothing rides the page cache.
        assert wal.unsynced_acks == 0
        wal.close()
        replayed = replay_wal(tmp_path)
        assert replayed.clean
        assert len(replayed.ops) == n * writers

    def test_sync_is_a_batch_barrier(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="group")
        tickets = [wal.submit_insert(i, i) for i in range(10)]
        wal.sync()  # returns only after everything above is fsynced
        assert all(t.done() for t in tickets)
        wal.close()

    def test_close_drains_pending_tickets(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="group")
        tickets = [wal.submit_insert(i, i) for i in range(50)]
        wal.close()
        for t in tickets:
            t.wait(5)  # resolved, not failed
        assert len(replay_wal(tmp_path).ops) == 50
        with pytest.raises(WALError):
            wal.log_insert(1, 1)

    def test_abort_drops_queue_and_refuses_appends(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="group")
        for i in range(5):
            wal.log_insert(i, i)  # durable: each waited for its batch
        wal.abort()
        with pytest.raises(WALError):
            wal.log_insert(99, 99)
        with pytest.raises(WALError):
            wal.submit_insert(99, 99)
        # Only the acknowledged records are on disk.
        assert len(replay_wal(tmp_path).ops) == 5

    def test_backpressure_bounded_queue_still_completes(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="group", group_queue_max=4)
        tickets = [wal.submit_insert(i, i) for i in range(100)]
        for t in tickets:
            t.wait(10)
        assert wal.group_batch_max <= 4
        wal.close()
        assert len(replay_wal(tmp_path).ops) == 100

    def test_rejects_bad_group_queue_max(self, tmp_path):
        with pytest.raises(WALError):
            WriteAheadLog(tmp_path, fsync="group", group_queue_max=0)

    def test_ticket_timeout_raises(self):
        with pytest.raises(WALError):
            CommitTicket().wait(timeout=0.01)


class TestGroupFailureSemantics:
    def test_injected_fsync_error_fails_batch_but_wal_survives(
        self, tmp_path
    ):
        """A recoverable flush failure (mode="raise") must fail every
        ticket of that batch — nobody gets acked off a failed fsync —
        while the flusher keeps serving later batches."""
        wal = WriteAheadLog(tmp_path, fsync="group")
        with failpoints.active("wal.group.pre_fsync", mode="raise"):
            ticket = wal.submit_insert(1, 1)
            with pytest.raises(FailpointError):
                ticket.wait(5)
        # Same WAL, next batch: works and is durable.
        wal.log_insert(2, 2)
        wal.close()
        ops = replay_wal(tmp_path).ops
        assert any(op[1] == 2 for op in ops)

    def test_simulated_crash_propagates_to_writer_and_kills_wal(
        self, tmp_path
    ):
        wal = WriteAheadLog(tmp_path, fsync="group")
        with failpoints.active("wal.group.pre_fsync", mode="crash"):
            ticket = wal.submit_insert(1, 1)
            with pytest.raises(SimulatedCrash):
                ticket.wait(5)
        # The flusher is dead: the WAL accepts nothing further.
        with pytest.raises(WALError):
            wal.log_insert(2, 2)
        wal.abort()

    def test_crash_after_ack_fsync_keeps_batch_durable(self, tmp_path):
        """Dying between the fsync and the acks loses the acks but not
        the bytes: recovery replays the batch (inflight is allowed to
        surface, never required)."""
        wal = WriteAheadLog(tmp_path, fsync="group")
        with failpoints.active("wal.group.ack", mode="crash"):
            ticket = wal.submit_insert(7, 70)
            with pytest.raises(SimulatedCrash):
                ticket.wait(5)
        wal.abort()
        ops = replay_wal(tmp_path).ops
        assert ops and ops[-1][1] == 7

    def test_flusher_death_outside_a_flush_settles_tickets(
        self, tmp_path
    ):
        """Regression: an exception in the flusher's own loop machinery
        (not inside a batch flush) used to leave pending tickets
        unsettled — writers blocked forever against a dead thread.  Now
        every pending ticket fails with WALDeadError and later
        submits/syncs are refused instead of hanging."""
        wal = WriteAheadLog(tmp_path, fsync="group")
        wal.log_insert(0, 0)  # flusher demonstrably alive

        def broken_clear():
            raise RuntimeError("wake machinery broke")

        wal._group_wake.clear = broken_clear
        ticket = wal.submit_insert(1, 1)
        with pytest.raises(WALDeadError) as exc_info:
            ticket.wait(5)
        # The killer rides along for diagnosis.
        assert isinstance(exc_info.value.__cause__, RuntimeError)
        # Refused fast, not queued behind a corpse.
        with pytest.raises(WALError):
            wal.submit_insert(2, 2)
        # sync() must return (not hang): the pipeline is dead, there is
        # nothing group-buffered to wait for.
        wal.sync()
        wal.abort()
        # Only the pre-death append is on disk.
        assert [op[1] for op in replay_wal(tmp_path).ops] == [0]


class TestDurableTreeSubmit:
    def test_tickets_carry_results(self, tmp_path):
        t = make_group_tree(tmp_path)
        ins = t.submit_insert(1, "a")
        dele = t.submit_delete(1)
        dele_missing = t.submit_delete(42)
        many = t.submit_many([(i, i) for i in range(10)])
        empty = t.submit_many([])
        assert ins.result(5) is None
        assert dele.result(5) is True
        assert dele_missing.result(5) is False
        assert many.result(5) == 10
        assert empty.result(5) == 0 and empty.done()
        t.close()

    def test_submit_is_applied_before_ack(self, tmp_path):
        t = make_group_tree(tmp_path)
        ticket = t.submit_insert(5, "v")
        # Visible to reads immediately (read-your-own-write), durable
        # only once the ticket resolves.
        assert t.get(5) == "v"
        ticket.wait(5)
        t.close()

    def test_non_group_policies_return_resolved_tickets(self, tmp_path):
        for policy in ("always", "interval", "none"):
            t = DurableTree(
                QuITTree(CFG), tmp_path / policy, fsync=policy
            )
            ticket = t.submit_insert(1, 1)
            assert ticket.done()
            assert t.submit_many([(2, 2), (3, 3)]).result() == 2
            t.close()

    def test_acked_submits_survive_abort(self, tmp_path):
        t = make_group_tree(tmp_path)
        acked = [t.submit_insert(i, i) for i in range(100)]
        for ticket in acked:
            ticket.wait(10)
        t.abort()  # process death: anything still queued may be lost
        recovered, report = DurableTree.recover(tmp_path, QuITTree, CFG)
        got = dict(recovered.tree.items())
        for i in range(100):
            assert got[i] == i
        recovered.close()

    def test_stats_mirror_group_counters(self, tmp_path):
        t = make_group_tree(tmp_path)
        tickets = [t.submit_insert(i, i) for i in range(30)]
        for ticket in tickets:
            ticket.wait(5)
        s = t.stats
        assert s.wal_group_batches == t.wal.group_batches >= 1
        assert s.wal_group_batch_records == 30
        assert s.wal_group_batch_max >= 1
        assert s.wal_unsynced_acks == 0
        assert s.wal_group_batch_mean == pytest.approx(
            30 / s.wal_group_batches
        )
        t.close()

    def test_checkpoint_interleaves_with_submits(self, tmp_path):
        t = make_group_tree(tmp_path)
        outstanding = []
        for i in range(300):
            outstanding.append(t.submit_insert(i, i))
            if i % 97 == 0:
                t.checkpoint()
        for ticket in outstanding:
            ticket.wait(10)
        t.close()
        recovered, _ = DurableTree.recover(tmp_path, QuITTree, CFG)
        assert len(recovered) == 300
        recovered.close()


class TestIntervalAckWindow:
    def test_unsynced_acks_counts_the_window(self, tmp_path):
        t = DurableTree(
            QuITTree(CFG), tmp_path, fsync="interval", fsync_interval=10
        )
        for i in range(25):
            t.insert(i, i)
        # 25 appends, fsync at 10 and 20: appends 1-9, 11-19, 21-25
        # were acked unsynced (the counter is cumulative).
        assert t.stats.wal_unsynced_acks == 9 + 9 + 5
        t.close()

    def test_none_policy_every_ack_unsynced(self, tmp_path):
        t = DurableTree(QuITTree(CFG), tmp_path, fsync="none")
        for i in range(7):
            t.insert(i, i)
        assert t.stats.wal_unsynced_acks == 7
        t.close()

    def test_group_and_always_never_unsynced(self, tmp_path):
        for policy in ("always", "group"):
            t = DurableTree(
                QuITTree(CFG), tmp_path / policy, fsync=policy
            )
            for i in range(20):
                t.insert(i, i)
            assert t.stats.wal_unsynced_acks == 0
            t.close()


class TestPrimaryPipelinedQuorum:
    def _pair(self, tmp_path, required_acks=1):
        primary = Primary(
            make_group_tree(tmp_path / "primary"),
            required_acks=required_acks,
        )
        replica = Replica(
            tmp_path / "replica",
            InProcessTransport(primary),
            tree_class=QuITTree,
            config=CFG,
        )
        replica.bootstrap()
        primary.attach(replica)
        return primary, replica

    def test_one_ack_round_covers_a_whole_batch(self, tmp_path):
        primary, replica = self._pair(tmp_path)
        for i in range(250):
            primary.submit_insert(i, i)
        drained = primary.drain_acks(timeout=30)
        assert drained == 250
        # The amortization the tentpole promises: one quorum round, not
        # one per write.
        assert primary.ack_rounds == 1
        assert len(replica.durable) == 250
        # Nothing left pending; a second drain is a no-op round-wise.
        assert primary.drain_acks() == 0
        assert primary.ack_rounds == 1
        primary.close()
        replica.close()

    def test_sync_write_path_still_acks_per_op(self, tmp_path):
        primary, replica = self._pair(tmp_path)
        primary.insert(1, "a")
        primary.insert(2, "b")
        assert primary.ack_rounds == 2
        assert len(replica.durable) == 2
        primary.close()
        replica.close()

    def test_kill_aborts_group_flusher(self, tmp_path):
        primary, replica = self._pair(tmp_path, required_acks=0)
        for i in range(20):
            primary.submit_insert(i, i)
        primary.drain_acks(timeout=10)
        primary.kill()
        with pytest.raises(WALError):
            primary.durable.insert(99, 99)
        replica.close()


@pytest.mark.skipif(
    not sanitizer.enabled(), reason="QUIT_SANITIZE=1 only"
)
class TestGroupCommitUnderSanitizer:
    def test_concurrent_submits_clean(self, tmp_path):
        t = make_group_tree(tmp_path)

        def work(base):
            for i in range(50):
                t.submit_insert(base + i, i).wait(10)

        threads = [
            threading.Thread(target=work, args=(w * 1000,))
            for w in range(4)
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        t.checkpoint()
        t.close()
        assert sanitizer.violations() == []
