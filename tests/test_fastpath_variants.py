"""Behavioural tests for the tail / lil fast paths (§2-§3)."""

from repro.core import (
    BPlusTree,
    LilBPlusTree,
    TailBPlusTree,
    TreeConfig,
)
from repro.sortedness import generate_keys

from conftest import validate_tree

CFG = TreeConfig(leaf_capacity=16, internal_capacity=16)


def ingest(cls, keys, cfg=CFG):
    tree = cls(cfg)
    for k in keys:
        tree.insert(int(k), int(k))
    return tree


class TestTailTree:
    def test_sorted_all_fast(self):
        tree = ingest(TailBPlusTree, range(1000))
        assert tree.stats.fast_insert_fraction == 1.0
        validate_tree(tree)

    def test_fast_path_points_at_tail(self):
        tree = ingest(TailBPlusTree, range(200))
        assert tree.fast_path_leaf is tree.tail_leaf

    def test_below_bound_goes_top(self):
        tree = ingest(TailBPlusTree, range(200))
        before = tree.stats.top_inserts
        tree.insert(-5, -5)
        assert tree.stats.top_inserts == before + 1
        validate_tree(tree)

    def test_forward_outlier_stales_the_path(self):
        # One huge key fills the tail with an outlier; once the tail
        # splits, its lower bound outruns the stream (§2, Fig. 3).
        tree = ingest(TailBPlusTree, range(100))
        tree.insert(1_000_000, 0)
        for k in range(100, 130):
            tree.insert(k, k)  # still below the split point: fast
        # Force the tail leaf to split by appending more huge keys.
        for k in range(1_000_001, 1_000_020):
            tree.insert(k, k)
        stats_before = tree.stats.snapshot()
        for k in range(130, 180):
            tree.insert(k, k)
        delta = tree.stats.diff(stats_before)
        assert delta.fast_inserts == 0
        assert delta.top_inserts == 50
        validate_tree(tree)

    def test_tail_collapse_under_bods(self):
        # Fig. 3's qualitative claim at this scale: by K=1% the tail path
        # serves almost nothing.
        keys = generate_keys(20_000, 0.01, 1.0, seed=1)
        tree = ingest(TailBPlusTree, keys)
        assert tree.stats.fast_insert_fraction < 0.30
        sorted_tree = ingest(TailBPlusTree, range(20_000))
        assert sorted_tree.stats.fast_insert_fraction == 1.0


class TestLilTree:
    def test_sorted_all_fast(self):
        tree = ingest(LilBPlusTree, range(1000))
        assert tree.stats.fast_insert_fraction == 1.0

    def test_pointer_follows_top_insert(self):
        tree = ingest(LilBPlusTree, range(200))
        tree.insert(50_000, 0)      # outlier: top-insert
        tree.insert(13, 1)          # back-fill far below
        # lil now points at the leaf holding 13.
        assert 13 in tree.fast_path_leaf.keys

    def test_comes_back_after_outlier(self):
        # The lil pointer pays two misses per displaced entry but then
        # resumes fast inserts (§3).
        tree = ingest(LilBPlusTree, range(500))
        stats0 = tree.stats.snapshot()
        tree.insert(10, 10)   # duplicate upsert lands mid-tree: top-insert
        tree.insert(500, 500)  # frontier key: top-insert (lil mid-tree)
        tree.insert(501, 501)  # now fast again
        delta = tree.stats.diff(stats0)
        assert delta.top_inserts == 2
        assert delta.fast_inserts == 1

    def test_matches_eq1_on_bods(self):
        # Eq. 1: FI(k) = (1-k)^2; at K=5% that is ~90%.
        keys = generate_keys(30_000, 0.05, 1.0, seed=4)
        tree = ingest(
            LilBPlusTree, keys,
            TreeConfig(leaf_capacity=64, internal_capacity=64),
        )
        assert 0.85 <= tree.stats.fast_insert_fraction <= 0.95

    def test_split_follows_entry(self):
        cfg = TreeConfig(leaf_capacity=8, internal_capacity=8)
        tree = LilBPlusTree(cfg)
        for k in range(8):
            tree.insert(k, k)
        # The 9th sorted insert splits the lil leaf; the entry goes right
        # and lil must follow (Fig. 4d).
        tree.insert(8, 8)
        assert 8 in tree.fast_path_leaf.keys
        low, high = tree.fast_path_bounds
        assert low is not None and high is None

    def test_extensional_equality_with_classical(self):
        keys = generate_keys(5_000, 0.10, 1.0, seed=6)
        lil = ingest(LilBPlusTree, keys)
        classical = ingest(BPlusTree, keys)
        assert list(lil.items()) == list(classical.items())
        validate_tree(lil)
