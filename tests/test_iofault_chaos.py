"""Disk-chaos soak: EIO bursts, an ENOSPC window, and one bit-rot event
against a replicated pair under live traffic.

Every schedule asserts the fault-tolerance contract end to end: no
acknowledged write lost, read-only degradation refuses mutations while
reads keep serving, the scrub detects + quarantines the rot, the
replica re-heals from its peer, and the pair converges byte for byte.

The default run keeps tier-1 fast; CI fans out with environment
knobs::

    IOFAULT_SCHEDULES=6 CHAOS_SEED_OFFSET=40 IOFAULT_OPS=900 pytest ...
"""

from __future__ import annotations

import os

import pytest

from repro.testing.chaos import IOFaultConfig, run_iofault_soak

SCHEDULES = int(os.environ.get("IOFAULT_SCHEDULES", "2"))
SEED_OFFSET = int(os.environ.get("CHAOS_SEED_OFFSET", "0"))
OPS = int(os.environ.get("IOFAULT_OPS", "600"))


@pytest.mark.parametrize(
    "seed", [SEED_OFFSET + i for i in range(SCHEDULES)]
)
def test_soak_survives_every_fault_phase(tmp_path, seed):
    report = run_iofault_soak(
        tmp_path, IOFaultConfig(seed=seed, ops=OPS)
    )
    assert report.lost_writes == [], report.summary()
    assert report.divergent_replicas == [], report.summary()
    assert report.recovered_matches, report.summary()
    assert report.converged, report.summary()
    # Each phase must have demonstrably bitten — a calm run would
    # vacuously "pass" the guarantees above.
    assert report.health_retries > 0, report.summary()
    assert report.read_only_trips > 0, report.summary()
    assert report.read_only_refusals > 0, report.summary()
    assert report.reads_served_degraded > 0, report.summary()
    assert report.recoveries > 0, report.summary()
    assert report.scrub_corruptions > 0, report.summary()
    assert report.scrub_quarantines > 0, report.summary()
    assert report.peer_repairs > 0, report.summary()
    assert report.ok


def test_report_summary_is_printable(tmp_path):
    report = run_iofault_soak(
        tmp_path, IOFaultConfig(seed=SEED_OFFSET, ops=OPS)
    )
    text = report.summary()
    assert f"seed={SEED_OFFSET}" in text
    assert "acked" in text
    assert "bit-rot" in text
