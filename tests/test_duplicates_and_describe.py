"""Tests for the duplicate-key adapter, describe(), and iter_from."""

import random

import pytest

from repro.core import (
    BPlusTree,
    DuplicateKeyIndex,
    QuITTree,
    TreeConfig,
    describe,
    format_description,
)

CFG = TreeConfig(leaf_capacity=8, internal_capacity=8)


class TestIterFrom:
    @pytest.fixture
    def tree(self, small_config, any_tree_class):
        t = any_tree_class(small_config)
        t.update((k, k * 2) for k in range(0, 200, 2))
        return t

    def test_from_existing_key(self, tree):
        out = list(tree.iter_from(100))
        assert out[0] == (100, 200)
        assert len(out) == 50

    def test_from_between_keys(self, tree):
        out = next(iter(tree.iter_from(99)))
        assert out == (100, 200)

    def test_from_before_min(self, tree):
        assert sum(1 for _ in tree.iter_from(-10)) == 100

    def test_from_past_max(self, tree):
        assert list(tree.iter_from(10_000)) == []

    def test_early_stop_is_lazy(self, tree):
        it = tree.iter_from(0)
        first_three = [next(it) for _ in range(3)]
        assert [k for k, _ in first_three] == [0, 2, 4]


class TestDuplicateKeyIndex:
    @pytest.fixture
    def index(self):
        idx = DuplicateKeyIndex(config=CFG)
        for i, price in enumerate(
            [100, 101, 101, 102, 101, 103, 103, 103, 104]
        ):
            idx.insert(price, f"trade{i}")
        return idx

    def test_len_counts_duplicates(self, index):
        assert len(index) == 9

    def test_get_all_in_arrival_order(self, index):
        assert index.get_all(101) == ["trade1", "trade2", "trade4"]
        assert index.get_all(103) == ["trade5", "trade6", "trade7"]
        assert index.get_all(999) == []

    def test_get_returns_oldest(self, index):
        assert index.get(101) == "trade1"
        assert index.get(999, "none") == "none"

    def test_count(self, index):
        assert index.count(101) == 3
        assert index.count(100) == 1
        assert index.count(999) == 0

    def test_contains(self, index):
        assert 102 in index
        assert 99 not in index

    def test_keys_distinct_sorted(self, index):
        assert list(index.keys()) == [100, 101, 102, 103, 104]

    def test_range_query(self, index):
        got = index.range_query(101, 103)
        assert [k for k, _ in got] == [101, 101, 101, 102]

    def test_items_ordered(self, index):
        keys = [k for k, _ in index.items()]
        assert keys == sorted(keys)

    def test_delete_one_removes_oldest(self, index):
        assert index.delete_one(101)
        assert index.get_all(101) == ["trade2", "trade4"]
        assert len(index) == 8

    def test_delete_one_missing(self, index):
        assert not index.delete_one(999)

    def test_delete_all(self, index):
        assert index.delete_all(103) == 3
        assert 103 not in index
        assert index.delete_all(103) == 0
        index.validate()

    def test_near_sorted_duplicates_ride_fast_path(self):
        # A gently rising price stream with heavy duplication: the
        # composite keys stay near-sorted, so QuIT's fast path engages.
        idx = DuplicateKeyIndex(
            config=TreeConfig(leaf_capacity=64, internal_capacity=64)
        )
        rng = random.Random(5)
        price = 1000
        for i in range(20_000):
            price += rng.choice((0, 0, 0, 1))
            idx.insert(price, i)
        assert idx.stats.fast_insert_fraction > 0.9
        idx.validate()

    def test_works_with_classical_tree(self):
        idx = DuplicateKeyIndex(tree_class=BPlusTree, config=CFG)
        for v in ("a", "b"):
            idx.insert(7, v)
        assert idx.get_all(7) == ["a", "b"]

    def test_matches_multimap_oracle(self):
        idx = DuplicateKeyIndex(config=CFG)
        oracle: dict[int, list[str]] = {}
        rng = random.Random(8)
        for step in range(3000):
            key = rng.randrange(100)
            if rng.random() < 0.7:
                idx.insert(key, f"v{step}")
                oracle.setdefault(key, []).append(f"v{step}")
            elif rng.random() < 0.5:
                got = idx.delete_one(key)
                assert got == bool(oracle.get(key))
                if oracle.get(key):
                    oracle[key].pop(0)
            else:
                removed = idx.delete_all(key)
                assert removed == len(oracle.get(key, []))
                oracle.pop(key, None)
        for key in range(100):
            assert idx.get_all(key) == oracle.get(key, [])
        idx.validate()


class TestDescribe:
    def test_fields(self):
        tree = QuITTree(CFG)
        tree.update((k, k) for k in range(500))
        desc = describe(tree)
        assert desc.name == "QuIT"
        assert desc.entries == 500
        assert desc.height == tree.height
        assert desc.leaf_count == tree.occupancy().leaf_count
        assert 0 < desc.avg_occupancy <= 1
        assert desc.fast_insert_fraction == 1.0
        assert desc.bytes_per_entry > 0

    def test_classical_tree_has_no_fastpath_fields(self):
        tree = BPlusTree(CFG)
        tree.insert(1, 1)
        desc = describe(tree)
        assert desc.fast_insert_fraction is None

    def test_empty_tree(self):
        desc = describe(BPlusTree(CFG))
        assert desc.entries == 0
        assert desc.bytes_per_entry == float("inf")

    def test_format_contains_key_numbers(self):
        tree = QuITTree(CFG)
        tree.update((k, k) for k in range(300))
        text = format_description(describe(tree))
        assert "QuIT" in text
        assert "300 entries" in text
        assert "fast path" in text
        assert "#" in text  # histogram bars
