"""Tests for the BoDS workload generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sortedness import generate_keys, kl_sortedness
from repro.sortedness.bods import BodsSpec, generate, generate_pairs


class TestSpecValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(n=-1),
        dict(n=10, k_fraction=-0.1),
        dict(n=10, k_fraction=1.1),
        dict(n=10, l_fraction=-0.1),
        dict(n=10, l_fraction=2.0),
        dict(n=10, alpha=0.0),
        dict(n=10, beta=-1.0),
        dict(n=10, key_step=0),
    ])
    def test_rejects(self, kwargs):
        with pytest.raises(ValueError):
            BodsSpec(**kwargs)


class TestGenerate:
    def test_empty(self):
        assert len(generate(BodsSpec(n=0))) == 0

    def test_keys_are_a_permutation(self):
        keys = generate_keys(5000, 0.10, 0.5, seed=1)
        assert sorted(keys.tolist()) == list(range(5000))

    def test_k_zero_is_sorted(self):
        keys = generate_keys(1000, 0.0, 1.0)
        assert np.array_equal(keys, np.arange(1000))

    def test_deterministic_per_seed(self):
        a = generate_keys(2000, 0.2, 0.5, seed=9)
        b = generate_keys(2000, 0.2, 0.5, seed=9)
        c = generate_keys(2000, 0.2, 0.5, seed=10)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    @pytest.mark.parametrize("k", [0.01, 0.05, 0.25, 0.5])
    def test_measured_k_close_to_requested(self, k):
        keys = generate_keys(20_000, k, 1.0, seed=3)
        measured = kl_sortedness(keys.tolist())
        assert abs(measured.k_fraction - k) < 0.02 + 0.1 * k

    @pytest.mark.parametrize("l", [0.01, 0.1, 0.5])
    def test_measured_l_bounded_by_requested(self, l):
        keys = generate_keys(20_000, 0.10, l, seed=4)
        measured = kl_sortedness(keys.tolist())
        # Collision slippage may exceed L slightly (documented).
        assert measured.l_fraction <= l * 1.3 + 0.01

    def test_fully_scrambled(self):
        keys = generate_keys(20_000, 1.0, 1.0, seed=5)
        measured = kl_sortedness(keys.tolist())
        assert measured.k_fraction > 0.95

    def test_scrambled_with_small_l_stays_local(self):
        keys = generate_keys(10_000, 1.0, 0.01, seed=6)
        measured = kl_sortedness(keys.tolist())
        assert measured.l_fraction <= 0.012
        assert measured.k_fraction > 0.8

    def test_key_start_and_step(self):
        spec = BodsSpec(n=100, k_fraction=0.0, key_start=1000, key_step=3)
        keys = generate(spec)
        assert keys[0] == 1000
        assert keys[-1] == 1000 + 99 * 3

    def test_beta_skew_displaces_early_positions(self):
        # alpha<beta skews displaced positions toward the stream start.
        early = BodsSpec(n=20_000, k_fraction=0.2, l_fraction=0.05,
                         alpha=1.0, beta=8.0, seed=7)
        late = BodsSpec(n=20_000, k_fraction=0.2, l_fraction=0.05,
                        alpha=8.0, beta=1.0, seed=7)
        def disorder_front(keys):
            head = keys[:10_000].tolist()
            return kl_sortedness(head).k
        assert disorder_front(generate(early)) > disorder_front(
            generate(late)
        )

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(1, 2000),
        k=st.floats(0.0, 1.0),
        l=st.floats(0.0, 1.0),
        seed=st.integers(0, 2**31),
    )
    def test_always_a_permutation(self, n, k, l, seed):
        keys = generate(BodsSpec(n=n, k_fraction=k, l_fraction=l, seed=seed))
        assert len(keys) == n
        assert sorted(keys.tolist()) == list(range(n))


class TestGeneratePairs:
    def test_default_values_are_keys(self):
        pairs = list(generate_pairs(BodsSpec(n=50, k_fraction=0.1)))
        assert all(k == v for k, v in pairs)
        assert all(isinstance(k, int) for k, _ in pairs)

    def test_custom_value_function(self):
        pairs = list(
            generate_pairs(BodsSpec(n=20), value_of=lambda k: k * 10)
        )
        assert all(v == k * 10 for k, v in pairs)
