"""Failure taxonomy, retry/backoff, and the HealthMonitor state machine.

The integration side (a DurableTree actually degrading under injected
disk faults) lives in tests/test_iofaults.py; this file covers the
machinery in isolation: which errors are transient, how RetryPolicy
escalates, and every legal (and illegal) HealthMonitor transition.
"""

import errno

import pytest

from repro.core.health import (
    HealthMonitor,
    HealthState,
    ReadOnlyError,
    RetryPolicy,
    is_transient,
)

FAST = RetryPolicy(attempts=4, base_delay=0.0001, max_delay=0.001,
                   deadline=5.0)


def _err(code):
    return OSError(code, "injected")


class TestTaxonomy:
    def test_transient_errnos(self):
        for code in (errno.EIO, errno.ENOSPC, errno.EAGAIN, errno.EINTR):
            assert is_transient(_err(code))

    def test_permanent_errnos(self):
        for code in (errno.EROFS, errno.EBADF, errno.EACCES):
            assert not is_transient(_err(code))

    def test_non_oserror_is_not_transient(self):
        assert not is_transient(ValueError("nope"))


class TestRetryPolicy:
    def test_returns_result_on_first_success(self):
        assert FAST.run(lambda: 42) == 42

    def test_retries_transient_until_success(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise _err(errno.EIO)
            return "ok"

        assert FAST.run(flaky) == "ok"
        assert len(calls) == 3

    def test_recover_hook_runs_between_attempts(self):
        rewinds = []
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 2:
                raise _err(errno.EIO)
            return "ok"

        assert FAST.run(flaky, recover=lambda: rewinds.append(1)) == "ok"
        assert rewinds == [1]

    def test_exhausted_transient_raises_read_only(self):
        def always():
            raise _err(errno.ENOSPC)

        with pytest.raises(ReadOnlyError) as exc_info:
            FAST.run(always)
        # The underlying OSError rides along for diagnosis.
        assert isinstance(exc_info.value.__cause__, OSError)
        assert exc_info.value.__cause__.errno == errno.ENOSPC

    def test_permanent_fault_escalates_immediately(self):
        calls = []

        def dead():
            calls.append(1)
            raise _err(errno.EROFS)

        with pytest.raises(ReadOnlyError):
            FAST.run(dead)
        assert len(calls) == 1  # no retries for a permanent fault

    def test_deadline_cuts_retries_short(self):
        policy = RetryPolicy(attempts=1000, base_delay=0.001,
                             max_delay=0.001, deadline=0.02)
        calls = []

        def always():
            calls.append(1)
            raise _err(errno.EIO)

        with pytest.raises(ReadOnlyError):
            policy.run(always)
        assert len(calls) < 1000

    def test_monitor_sees_every_outcome(self):
        monitor = HealthMonitor("t")
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 2:
                raise _err(errno.EIO)
            return "ok"

        FAST.run(flaky, monitor=monitor)
        assert monitor.retries == 1
        assert monitor.state is HealthState.HEALTHY  # success restored it

    def test_monitor_goes_read_only_on_exhaustion(self):
        monitor = HealthMonitor("t")
        with pytest.raises(ReadOnlyError):
            FAST.run(lambda: (_ for _ in ()).throw(_err(errno.EIO)),
                     monitor=monitor)
        assert monitor.state is HealthState.READ_ONLY
        assert monitor.read_only_trips == 1

    def test_monitor_goes_failed_on_permanent(self):
        monitor = HealthMonitor("t")

        def dead():
            raise _err(errno.EROFS)

        with pytest.raises(ReadOnlyError):
            FAST.run(dead, monitor=monitor)
        assert monitor.state is HealthState.FAILED


class TestHealthMonitor:
    def test_starts_healthy_and_writable(self):
        m = HealthMonitor()
        assert m.state is HealthState.HEALTHY
        assert m.writable
        m.require_writable()  # must not raise

    def test_retry_degrades_success_restores(self):
        m = HealthMonitor()
        m.record_retry(_err(errno.EIO))
        assert m.state is HealthState.DEGRADED
        assert m.writable  # degraded still takes writes
        assert m.degradations == 1
        m.record_success()
        assert m.state is HealthState.HEALTHY
        # Re-degrading counts again.
        m.record_retry(_err(errno.EIO))
        assert m.degradations == 2

    def test_read_only_refuses_mutations(self):
        m = HealthMonitor("demo")
        m.mark_read_only(_err(errno.EIO))
        assert m.state is HealthState.READ_ONLY
        assert not m.writable
        with pytest.raises(ReadOnlyError, match="demo"):
            m.require_writable()

    def test_read_only_trip_counted_once(self):
        m = HealthMonitor()
        m.mark_read_only(_err(errno.EIO))
        m.mark_read_only(_err(errno.EIO))
        assert m.read_only_trips == 1

    def test_restore_heals_and_counts(self):
        m = HealthMonitor()
        m.mark_read_only(_err(errno.EIO))
        assert m.restore()
        assert m.state is HealthState.HEALTHY
        assert m.recoveries == 1
        # Restoring an already-healthy monitor is a quiet no-op.
        assert m.restore()
        assert m.recoveries == 1

    def test_failed_is_terminal(self):
        m = HealthMonitor()
        m.mark_failed(_err(errno.EROFS))
        assert m.state is HealthState.FAILED
        assert not m.restore()
        assert m.state is HealthState.FAILED
        m.mark_read_only(_err(errno.EIO))  # cannot downgrade FAILED
        assert m.state is HealthState.FAILED
        with pytest.raises(ReadOnlyError):
            m.require_writable()

    def test_snapshot_is_operator_readable(self):
        m = HealthMonitor()
        m.record_retry(_err(errno.EIO))
        snap = m.snapshot()
        assert snap["state"] == "degraded"
        assert snap["retries"] == 1
        assert "injected" in snap["last_error"]
