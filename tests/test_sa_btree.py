"""Tests for the SWARE SA-B+-tree facade."""

import random

import pytest

from repro.core import TreeConfig
from repro.sortedness import generate_keys
from repro.sware import SABPlusTree

CFG = TreeConfig(leaf_capacity=16, internal_capacity=16)


def make_sa(buffer_capacity=64, page_capacity=16):
    return SABPlusTree(
        CFG, buffer_capacity=buffer_capacity, page_capacity=page_capacity
    )


class TestBasicOperations:
    def test_insert_and_get_from_buffer(self):
        sa = make_sa()
        sa.insert(5, "five")
        assert sa.get(5) == "five"
        assert 5 in sa
        assert len(sa) == 1

    def test_get_after_flush(self):
        sa = make_sa()
        for k in range(200):
            sa.insert(k, k * 2)
        sa.flush()
        assert sa.get(123) == 246

    def test_get_default(self):
        sa = make_sa()
        sa.insert(1, 1)
        assert sa.get(999, "nope") == "nope"

    def test_upsert_across_flush_boundary(self):
        sa = make_sa(buffer_capacity=8)
        sa.insert(5, "old")
        for k in range(100, 120):
            sa.insert(k, k)  # force flushes
        sa.insert(5, "new")
        assert sa.get(5) == "new"
        sa.flush()
        assert sa.get(5) == "new"

    def test_len_counts_distinct_keys(self):
        sa = make_sa(buffer_capacity=16)
        for k in range(10):
            sa.insert(k, k)
        sa.flush()
        for k in range(5, 15):
            sa.insert(k, -k)  # 5 overlap with tree
        assert len(sa) == 15


class TestFlush:
    def test_flush_empties_buffer(self):
        sa = make_sa()
        for k in range(30):
            sa.insert(k, k)
        sa.flush()
        assert len(sa.buffer) == 0
        assert len(sa.tree) == 30

    def test_auto_flush_when_full(self):
        sa = make_sa(buffer_capacity=16)
        for k in range(100):
            sa.insert(k, k)
        assert sa.flush_stats.flushes >= 5

    def test_sorted_stream_bulk_loads_in_long_segments(self):
        sa = make_sa(buffer_capacity=64)
        for k in range(1000):
            sa.insert(k, k)
        sa.flush()
        assert sa.flush_stats.avg_segment_length > 10

    def test_scrambled_stream_degrades_to_short_segments(self):
        sa = make_sa(buffer_capacity=64)
        keys = [int(k) for k in generate_keys(1000, 1.0, 1.0, seed=2)]
        for k in keys:
            sa.insert(k, k)
        sa.flush()
        assert sa.flush_stats.avg_segment_length < 6

    def test_flush_idempotent_when_empty(self):
        sa = make_sa()
        sa.flush()
        sa.flush()
        assert sa.flush_stats.flushes == 0


class TestRangeQuery:
    def test_merges_buffer_and_tree(self):
        sa = make_sa(buffer_capacity=128)
        for k in range(0, 100, 2):
            sa.insert(k, "tree")
        sa.flush()
        for k in range(1, 100, 2):
            sa.insert(k, "buffer")
        got = sa.range_query(10, 20)
        assert [k for k, _ in got] == list(range(10, 20))
        assert dict(got)[11] == "buffer"
        assert dict(got)[12] == "tree"

    def test_buffer_shadows_tree(self):
        sa = make_sa()
        sa.insert(5, "v1")
        sa.flush()
        sa.insert(5, "v2")
        assert sa.range_query(0, 10) == [(5, "v2")]


class TestDelete:
    def test_delete_from_buffer(self):
        sa = make_sa()
        sa.insert(5, 5)
        assert sa.delete(5)
        assert sa.get(5) is None

    def test_delete_from_tree(self):
        sa = make_sa()
        sa.insert(5, 5)
        sa.flush()
        assert sa.delete(5)
        assert sa.get(5) is None

    def test_delete_missing(self):
        sa = make_sa()
        assert not sa.delete(42)


class TestOracleEquivalence:
    @pytest.mark.parametrize("k_fraction", [0.0, 0.05, 0.5, 1.0])
    def test_matches_oracle_across_sortedness(self, k_fraction):
        sa = make_sa(buffer_capacity=32)
        keys = generate_keys(2000, k_fraction, 1.0, seed=7)
        oracle = {}
        for k in keys:
            k = int(k)
            sa.insert(k, k * 3)
            oracle[k] = k * 3
        assert list(sa.items()) == sorted(oracle.items())
        sa.flush()
        sa.validate()
        assert list(sa.items()) == sorted(oracle.items())

    def test_mixed_workload_with_deletes(self):
        sa = make_sa(buffer_capacity=32)
        oracle = {}
        rng = random.Random(17)
        for step in range(2000):
            k = rng.randrange(400)
            if rng.random() < 0.7:
                sa.insert(k, step)
                oracle[k] = step
            else:
                assert sa.delete(k) == (k in oracle)
                oracle.pop(k, None)
        assert list(sa.items()) == sorted(oracle.items())


class TestMemory:
    def test_memory_includes_buffer(self):
        sa = make_sa(buffer_capacity=1024)
        for k in range(100):
            sa.insert(k, k)
        total = sa.memory_bytes()
        assert total > sa.tree.memory_bytes()
