"""Strict-typing gate over the durability, concurrency, network,
and replication layers.

``mypy`` is not part of the base test environment, so the test skips
when it is absent; CI's ``lint`` job installs it (``pip install
.[lint]``) and runs this for real.  The scope and strictness flags live
in ``pyproject.toml`` ``[tool.mypy]``.
"""

import subprocess
import sys
from pathlib import Path

import pytest

pytest.importorskip("mypy", reason="mypy not installed; CI lint job runs this")

REPO_ROOT = Path(__file__).parent.parent


def test_mypy_strict_gated_packages():
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "mypy",
            "-p",
            "repro.core",
            "-p",
            "repro.concurrency",
            "-p",
            "repro.net",
            "-p",
            "repro.replication",
        ],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, f"mypy --strict failed:\n{proc.stdout}\n{proc.stderr}"
