#!/usr/bin/env python3
"""Group commit: batched fsync + pipelined acks, same durability.

``fsync="always"`` pays one fsync per write; ``fsync="group"`` hands
the flush to a dedicated flusher thread that coalesces every record
queued while the previous flush was in flight into a single
``write + fsync`` — and still never acknowledges a write before its
batch is durable. The ``submit_*`` surface makes the batching
reachable: it applies the write immediately (read-your-own-write) and
returns a ``CommitTicket`` whose ``result()`` blocks until the fsync
covering that record completes.

This script races 8 writers under ``always`` vs ``group``, prints the
fsync counts and throughput, then aborts the group tree mid-stream
(simulated process death) and shows recovery keeping every
acknowledged write.

Run:  python examples/group_commit.py
"""

import shutil
import tempfile
import threading
import time
from collections import deque
from pathlib import Path

from repro import QuITTree, TreeConfig
from repro.concurrency import ConcurrentTree
from repro.core import DurableTree

WRITERS = 8
PER_WRITER = 1_500
INFLIGHT = 64  # outstanding tickets per writer before awaiting one

CONFIG = TreeConfig(leaf_capacity=64, internal_capacity=64)


def ingest(policy: str, directory: Path) -> tuple[float, DurableTree]:
    """8 threads, each pipelining durable inserts through submit_*."""
    tree = DurableTree(
        ConcurrentTree(QuITTree(CONFIG)), directory, fsync=policy
    )

    def work(writer: int) -> None:
        pending: deque = deque()
        for i in range(PER_WRITER):
            pending.append(tree.submit_insert(writer * 10**6 + i, i))
            if len(pending) > INFLIGHT:
                pending.popleft().result(120)
        while pending:  # nothing counts until every ack landed
            pending.popleft().result(120)

    threads = [
        threading.Thread(target=work, args=(w,)) for w in range(WRITERS)
    ]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return time.perf_counter() - start, tree


def main() -> None:
    root = Path(tempfile.mkdtemp(prefix="quit-group-commit-"))
    total = WRITERS * PER_WRITER
    try:
        # ------------------------------------------------- the A/B race
        results = {}
        for policy in ("always", "group"):
            seconds, tree = ingest(policy, root / policy)
            wal = tree.wal
            print(
                f"fsync={policy:<6} {total:,} durable inserts in "
                f"{seconds:5.2f}s  ({total / seconds:8,.0f} ops/s, "
                f"{wal.syncs:,} fsyncs)"
            )
            results[policy] = seconds
            if policy == "group":
                mean = tree.stats.wal_group_batch_mean
                print(
                    f"             {wal.group_batches:,} batches, "
                    f"mean {mean:.1f} records/fsync "
                    f"(max {wal.group_batch_max}), "
                    f"unsynced acks: {wal.unsynced_acks}"
                )
            tree.close()
        speedup = results["always"] / results["group"]
        print(f"group commit speedup over per-op fsync: {speedup:.1f}x")

        # ---------------------------- same contract under process death
        crash_dir = root / "crash"
        tree = DurableTree(
            ConcurrentTree(QuITTree(CONFIG)), crash_dir, fsync="group"
        )
        acked = 0
        for i in range(5_000):
            tree.submit_insert(i, i).result(120)
            acked += 1
            if i == 3_333:
                break
        tree.abort()  # process death: queued-but-unacked work may be lost
        recovered, report = DurableTree.recover(crash_dir, QuITTree, CONFIG)
        print(
            f"aborted after {acked:,} acked submits; recovery replayed "
            f"{report.records_replayed:,} records (clean={report.clean})"
        )
        assert len(recovered) >= acked, "an acked write went missing"
        assert recovered.check(check_min_fill=False) == []
        recovered.close()
        print("every acknowledged write survived the crash")
    finally:
        shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    main()
