#!/usr/bin/env python3
"""Batched ingest: hand the tree chunks instead of single keys.

``insert_many`` detects the sorted runs inside each batch, descends once
per run segment, and splices whole segments into the leaves — on
near-sorted streams this is several times faster than a per-key insert
loop, with identical results.

Run:  python examples/batch_ingest.py
"""

import time

from repro import BPlusTree, QuITTree, TreeConfig
from repro.sortedness import generate_keys

N = 50_000
BATCH_SIZE = 4096


def main() -> None:
    # The paper's default near-sorted shape: 5% of keys displaced by up
    # to 5% of the stream length.
    keys = [int(k) for k in generate_keys(N, 0.05, 0.05, seed=42)]
    config = TreeConfig(leaf_capacity=64, internal_capacity=64)

    # Per-key baseline.
    per_key = BPlusTree(config)
    start = time.perf_counter()
    for k in keys:
        per_key.insert(k, k)
    per_key_s = time.perf_counter() - start

    # Same stream, batched: chunk the feed and call insert_many.
    batched = BPlusTree(config)
    items = [(k, k) for k in keys]
    start = time.perf_counter()
    for lo in range(0, len(items), BATCH_SIZE):
        batched.insert_many(items[lo : lo + BATCH_SIZE])
    batched_s = time.perf_counter() - start

    assert list(batched.items()) == list(per_key.items())
    print(f"{N:,} keys, K=5% L=5%, batches of {BATCH_SIZE}")
    print(f"per-key insert : {per_key_s:.3f}s")
    print(
        f"insert_many    : {batched_s:.3f}s "
        f"({per_key_s / batched_s:.1f}x faster, identical contents)"
    )

    # The batch counters show how the work collapsed: ~N keys arrived in
    # a few hundred runs, applied with roughly one descent per segment.
    stats = batched.stats
    print(
        f"\n{stats.batch_inserts:,} keys arrived as {stats.batch_runs:,} "
        f"sorted runs -> {stats.batch_segments:,} leaf segments "
        f"({stats.batch_chained_segments:,} reached without a descent)"
    )

    # Fast-path variants keep their pointer across batches: QuIT serves
    # whole segments straight from the pole.
    quit_tree = QuITTree(config)
    for lo in range(0, len(items), BATCH_SIZE):
        quit_tree.insert_many(items[lo : lo + BATCH_SIZE])
    qstats = quit_tree.stats
    print(
        f"QuIT: {qstats.batch_fast_segments:,} of "
        f"{qstats.batch_segments:,} segments served by the pole pointer"
    )


if __name__ == "__main__":
    main()
