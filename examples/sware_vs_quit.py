#!/usr/bin/env python3
"""Head-to-head: QuIT vs the SWARE paradigm (the paper's §5.4).

Both indexes ingest the same near-sorted stream; then a read phase mixes
point lookups over old keys (served by the tree) and the freshest keys
(which, for SWARE, still sit in its buffer).  Shows SWARE's buffer
machinery at work (Bloom filters, zonemaps, opportunistic bulk loads) and
why QuIT's bufferless design has no read penalty.

Run:  python examples/sware_vs_quit.py
"""

import time

from repro.core import QuITTree, TreeConfig
from repro.sortedness import generate_keys
from repro.sware import SABPlusTree

N = 60_000


def main() -> None:
    keys = [int(k) for k in generate_keys(N, 0.05, 1.0, seed=21)]
    config = TreeConfig(leaf_capacity=64, internal_capacity=64)
    quit_index = QuITTree(config)
    sware_index = SABPlusTree(config, buffer_capacity=N // 100)

    for name, index in (("QuIT", quit_index), ("SWARE", sware_index)):
        start = time.perf_counter()
        for key in keys:
            index.insert(key, key)
        elapsed = time.perf_counter() - start
        print(f"{name:6s} ingest: {elapsed:.2f}s "
              f"({elapsed / N * 1e6:.2f} us/insert)")

    fs = sware_index.flush_stats
    bs = sware_index.buffer_stats
    print(
        f"\nSWARE internals: {fs.flushes} flushes, "
        f"{fs.bulk_loaded:,} entries bulk-loaded in {fs.segments:,} "
        f"segments (avg run length {fs.avg_segment_length:.1f}), "
        f"{bs.out_of_order_appends:,} out-of-order arrivals triggered "
        f"zonemap scans"
    )
    print(f"buffered right now: {len(sware_index.buffer):,} entries "
          f"(queries must probe these first)")

    # Read phase: old keys vs freshest keys.
    old = keys[: N // 2: 37]
    fresh = keys[-200:]
    for label, targets in (("old keys", old), ("freshest keys", fresh)):
        row = []
        for name, index in (("QuIT", quit_index), ("SWARE", sware_index)):
            start = time.perf_counter()
            for key in targets:
                assert index.get(key) == key
            per_op = (time.perf_counter() - start) / len(targets) * 1e6
            row.append(f"{name}={per_op:.2f}us")
        print(f"point lookups on {label:14s}: " + "  ".join(row))

    print(
        f"\nmemory: QuIT {quit_index.memory_bytes() / 1024:.0f}KB vs "
        f"SWARE {sware_index.memory_bytes() / 1024:.0f}KB "
        f"(tree + buffer + filters + zonemaps)"
    )


if __name__ == "__main__":
    main()
