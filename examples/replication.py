#!/usr/bin/env python3
"""WAL-shipping replication: primary, replicas, failover, fencing.

A ``Primary`` wraps a ``DurableTree`` and serves its write-ahead log as
a stream; ``Replica`` nodes bootstrap from the latest checkpoint
snapshot, apply shipped records through their own durable tree, and can
be promoted when the primary dies. This script walks the whole story:
synchronous-ack replication, a primary kill, coordinator-driven
failover (epoch bump + promotion of the most-caught-up replica), and
the deposed primary's writes being fenced off after the network heals.

Run:  python examples/replication.py
"""

import shutil
import tempfile
from pathlib import Path

from repro import QuITTree, TreeConfig
from repro.core import DurableTree
from repro.replication import (
    EpochRegistry,
    FailoverCoordinator,
    FencedError,
    InProcessTransport,
    Primary,
    Replica,
)

N_BEFORE_SNAPSHOT = 20_000
N_STREAMED = 5_000


def main() -> None:
    root = Path(tempfile.mkdtemp(prefix="quit-replication-"))
    config = TreeConfig(leaf_capacity=64, internal_capacity=64)
    registry = EpochRegistry()
    try:
        # ------------------------------------------------- primary up
        primary = Primary(
            DurableTree(QuITTree(config), root / "node0", fsync="none"),
            registry=registry, node_id="node0",
        )
        primary.insert_many(
            [(i, f"row-{i}") for i in range(N_BEFORE_SNAPSHOT)]
        )
        primary.checkpoint()
        print(f"primary node0: epoch {primary.epoch}, "
              f"{len(primary):,} entries checkpointed")

        # ------------------------- replicas bootstrap, then stream
        replicas = []
        for i in (1, 2):
            replica = Replica(
                root / f"node{i}", InProcessTransport(primary),
                tree_class=QuITTree, config=config, name=f"node{i}",
            )
            replica.bootstrap()
            primary.attach(replica)
            replicas.append(replica)
        print(f"replicas bootstrapped from snapshot: "
              f"{[len(r) for r in replicas]} entries each")

        # required_acks=1: from here on, each write must be applied by
        # a replica before the primary acknowledges it.
        primary.required_acks = 1
        for i in range(N_BEFORE_SNAPSHOT,
                       N_BEFORE_SNAPSHOT + N_STREAMED):
            primary.insert(i, f"row-{i}")
        tail = primary.tail_position()
        for replica in replicas:
            replica.catch_up(tail, max_rounds=200)
        print(f"streamed {N_STREAMED:,} writes; replica lag: "
              f"{[r.lag_bytes for r in replicas]} bytes")

        # ------------------------------------ primary dies; failover
        coordinator = FailoverCoordinator(
            primary, InProcessTransport(primary), replicas, registry,
            transport_factory=InProcessTransport, failure_threshold=2,
        )
        primary.kill()
        report = None
        while report is None:
            report = coordinator.tick()
        print(f"failover: {report.old_node} (epoch {report.old_epoch}) "
              f"-> {report.new_node} (epoch {report.new_epoch}), "
              f"winner at {report.winner_lsn}, "
              f"scrub repaired {report.scrub_repairs} pointer(s)")

        new_primary = coordinator.primary
        new_primary.insert(999_999, "written in the new tenure")
        survivor = coordinator.replicas[0]
        survivor.catch_up(new_primary.tail_position())
        assert survivor.get(999_999) == "written in the new tenure"
        print(f"new primary {new_primary.node_id}: "
              f"{len(new_primary):,} entries; survivor "
              f"{survivor.name} follows at epoch {survivor.epoch}")

        # -------------------------- the deposed primary stays fenced
        primary.alive = True  # the old process limps back online
        try:
            primary.insert(0, "split-brain attempt")
        except FencedError as exc:
            print(f"old primary fenced: {exc}")
        assert new_primary.get(0) == "row-0"  # nothing diverged

        expected = N_BEFORE_SNAPSHOT + N_STREAMED + 1
        assert len(new_primary) == expected
        assert survivor.items() == list(new_primary.items())
        print(f"converged: {expected:,} entries, replica byte-for-byte "
              "equal — no acknowledged write lost")
    finally:
        shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    main()
