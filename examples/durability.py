#!/usr/bin/env python3
"""Crash-safe durability: WAL + checkpoints + recovery.

``DurableTree`` wraps any variant and write-ahead-logs every logical
operation before applying it, so an acknowledged write survives a
process crash. ``checkpoint()`` folds the log into a checksummed
snapshot; ``recover()`` rebuilds from snapshot + log, tolerating a torn
log tail. This script kills itself (logically, via the fault-injection
framework) in the middle of an ingest and shows recovery landing on
exactly the acknowledged state.

Run:  python examples/durability.py
"""

import shutil
import tempfile
from pathlib import Path

from repro import QuITTree, TreeConfig
from repro.core import DurableTree
from repro.testing import SimulatedCrash, failpoints

N_BEFORE_CHECKPOINT = 50_000
N_AFTER_CHECKPOINT = 5_000
CRASH_AFTER = 3_000  # acknowledged post-checkpoint writes before the "crash"


def main() -> None:
    state_dir = Path(tempfile.mkdtemp(prefix="quit-durability-"))
    config = TreeConfig(leaf_capacity=64, internal_capacity=64)
    try:
        # ------------------------------------------------------ ingest
        tree = DurableTree(QuITTree(config), state_dir, fsync="none")
        tree.insert_many([(i, f"row-{i}") for i in range(N_BEFORE_CHECKPOINT)])
        snapshotted = tree.checkpoint()
        print(f"checkpointed {snapshotted:,} entries "
              f"-> {state_dir / 'snapshot.quit'}")

        # ------------------------------------------- crash mid-ingest
        # Arm a failpoint so the 3001st post-checkpoint insert dies
        # after its WAL append — the moment a real process could lose
        # power. SimulatedCrash subclasses BaseException: no cleanup
        # handler inside the library can swallow it, and nothing gets
        # flushed on the way down, just like a dead process.
        acknowledged = 0
        try:
            with failpoints.active(
                "wal.after_append", mode="crash", hits_before=CRASH_AFTER
            ):
                for i in range(N_AFTER_CHECKPOINT):
                    tree.insert(N_BEFORE_CHECKPOINT + i, f"late-{i}")
                    acknowledged += 1
        except SimulatedCrash:
            print(f"crashed after {acknowledged:,} acknowledged "
                  f"post-checkpoint inserts (1 more was in flight)")

        # ----------------------------------------------------- recover
        recovered, report = DurableTree.recover(
            state_dir, QuITTree, config
        )
        print(f"recovered {len(recovered):,} entries: "
              f"{report.snapshot_entries:,} from the snapshot + "
              f"{report.records_replayed:,} WAL records replayed "
              f"(clean={report.clean})")

        expected = N_BEFORE_CHECKPOINT + acknowledged
        assert len(recovered) in (expected, expected + 1), (
            "recovery must land on the acknowledged state "
            "(the in-flight insert may or may not have reached the log)"
        )
        assert recovered.get(N_BEFORE_CHECKPOINT) == "late-0"
        assert recovered.check(check_min_fill=False) == []
        print("structural check passed; every acknowledged write survived")

        # The recovered tree is immediately writable and durable again.
        recovered.insert(10**9, "post-recovery")
        recovered.checkpoint()
        recovered.close()
        print("post-recovery write + checkpoint OK")
    finally:
        shutil.rmtree(state_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
