#!/usr/bin/env python3
"""Serving a QuIT over the network with end-to-end request robustness.

``repro.net`` puts a durable tree behind a socket without giving up any
of the guarantees the in-process surface makes.  This script runs a
server and a client in one process and shows each layer:

1. every request carries a **deadline** and an **idempotency id**; the
   client retries transient failures under its budget and the server
   dedupes redelivered mutations (at-least-once delivery becomes
   exactly-once apply);
2. **pipelined ingest**: many frames in flight fan into one group
   commit, the network analogue of ``submit_many``;
3. **admission control**: a saturated server sheds load fast with an
   advisory backoff instead of queueing without bound;
4. **typed refusals**: a read-only store keeps serving reads while
   mutations fail fast with an error the client does not retry;
5. **graceful drain**: shutdown settles in-flight requests and
   checkpoints before the process exits.

Run:  python examples/network.py
"""

import shutil
import tempfile
from pathlib import Path

from repro import QuITTree, TreeConfig
from repro.core import DurableTree
from repro.net import (
    BackgroundServer,
    QuitClient,
    ServerReadOnlyError,
)

N = 5_000


def main() -> None:
    state_dir = Path(tempfile.mkdtemp(prefix="quit-net-"))
    config = TreeConfig(leaf_capacity=64, internal_capacity=64)
    try:
        durable = DurableTree(QuITTree(config), state_dir, fsync="group")
        with BackgroundServer(durable) as bg:
            client = QuitClient("127.0.0.1", bg.port, deadline=10.0)

            # -- 1. deadline + idempotent acks ------------------------
            ack = client.insert_acked(-1, "hello")
            print(
                f"one write: applied={ack.applied} "
                f"boot={ack.boot_id:08x} rid={ack.request_id:x}"
            )

            # -- 2. pipelined bulk ingest -----------------------------
            batches = [
                [(i, i * i) for i in range(lo, min(lo + 512, N))]
                for lo in range(0, N, 512)
            ]
            added = client.pipeline_insert_many(batches, window=16)
            print(f"pipelined {added} rows in {len(batches)} frames")
            print(f"range [10, 15): {client.range_query(10, 15)}")

            # -- 3. admission stats -----------------------------------
            stats = bg.stats
            print(
                f"admission: inflight max {stats.net_inflight_max}, "
                f"{stats.net_sheds} shed(s), "
                f"{stats.net_dedup_hits} dedup hit(s)"
            )

            # -- 4. read-only degradation -----------------------------
            durable.health.mark_read_only(None)
            try:
                client.insert(-2, "blocked")
            except ServerReadOnlyError as exc:
                print(f"read-only refusal (no retries burned): {exc}")
            print(f"reads keep serving: key -1 = {client.get(-1)!r}")
            durable.health.restore()

            client.close()
        # -- 5. graceful drain (BackgroundServer exit == SIGTERM path)
        print("drained: in-flight settled, checkpoint written")

        recovered, report = DurableTree.recover(
            state_dir, QuITTree, config
        )
        print(
            f"cold recovery: {len(recovered)} entries, "
            f"clean={report.clean}"
        )
        recovered.close()
        durable.close()
    finally:
        shutil.rmtree(state_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
