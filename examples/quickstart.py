#!/usr/bin/env python3
"""Quickstart: build a Quick Insertion Tree, ingest a near-sorted stream,
and query it.

Run:  python examples/quickstart.py
"""

from repro import BPlusTree, QuITTree, TreeConfig
from repro.sortedness import generate_keys, kl_sortedness


def main() -> None:
    # A near-sorted stream: 5% of entries arrive out of order, displaced
    # by up to the full stream length (the paper's default workload).
    keys = generate_keys(50_000, k_fraction=0.05, l_fraction=1.0, seed=42)
    measured = kl_sortedness(keys.tolist())
    print(
        f"workload: {len(keys):,} keys, measured K-L sortedness "
        f"K={measured.k_fraction:.1%} L={measured.l_fraction:.1%}"
    )

    # QuIT is a drop-in B+-tree: same insert/get/range_query/delete API.
    config = TreeConfig(leaf_capacity=64, internal_capacity=64)
    index = QuITTree(config)
    for key in keys:
        index.insert(int(key), f"row-{key}")

    print(f"\ningested {len(index):,} entries, tree height {index.height}")
    stats = index.stats
    print(
        f"fast-path inserts: {stats.fast_inserts:,} "
        f"({stats.fast_insert_fraction:.1%}) — "
        f"only {stats.top_inserts:,} tree traversals were needed"
    )
    occ = index.occupancy()
    print(f"average leaf occupancy: {occ.avg_occupancy:.1%}")

    # Point lookups are identical to a classical B+-tree (no read penalty).
    print(f"\nlookup 12345 -> {index.get(12345)!r}")
    print(f"lookup missing -> {index.get(10**9, 'not found')!r}")

    # Range scans ride the interlinked leaves.
    window = index.range_query(1000, 1010)
    print(f"range [1000, 1010) -> {[k for k, _ in window]}")

    # Deletes behave like the textbook B+-tree (§4.4).
    index.delete(1005)
    window = index.range_query(1000, 1010)
    print(f"after delete(1005)  -> {[k for k, _ in window]}")

    # Compare against a classical B+-tree ingesting the same stream.
    classical = BPlusTree(config)
    for key in keys:
        classical.insert(int(key), None)
    print(
        f"\nclassical B+-tree: 0 fast inserts, "
        f"occupancy {classical.occupancy().avg_occupancy:.1%}, "
        f"{classical.memory_bytes() / index.memory_bytes():.2f}x "
        f"the memory of QuIT"
    )


if __name__ == "__main__":
    main()
