#!/usr/bin/env python3
"""Concurrent ingestion with the §4.5 locking protocol.

Four writer threads ingest disjoint slices of a near-sorted stream into a
shared QuIT while reader threads run point lookups, exercising the
fast-path metadata lock, the striped leaf latches, and the structural
reader-writer lock.  Also prints the modeled Fig. 13 throughput curves
(CPython threads cannot scale CPU-bound work; see DESIGN.md).

Run:  python examples/concurrent_ingest.py
"""

import random
import threading
import time

from repro.concurrency import (
    ConcurrentTree,
    insert_profile,
    lookup_profile,
    throughput_curve,
)
from repro.core import QuITTree, TreeConfig
from repro.sortedness import generate_keys

N = 30_000
WRITERS = 4
READERS = 2


def main() -> None:
    keys = [int(k) for k in generate_keys(N, 0.05, 1.0, seed=3)]
    shared = ConcurrentTree(QuITTree(
        TreeConfig(leaf_capacity=64, internal_capacity=64)
    ))
    stop = threading.Event()
    lookup_counts = [0] * READERS

    def writer(slice_no: int) -> None:
        for key in keys[slice_no::WRITERS]:
            shared.insert(key, key)

    def reader(reader_no: int) -> None:
        rng = random.Random(reader_no)
        while not stop.is_set():
            probe = rng.randrange(N)
            value = shared.get(probe)
            assert value is None or value == probe
            lookup_counts[reader_no] += 1

    threads = [
        threading.Thread(target=writer, args=(i,)) for i in range(WRITERS)
    ] + [
        threading.Thread(target=reader, args=(i,)) for i in range(READERS)
    ]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads[:WRITERS]:
        t.join()
    stop.set()
    for t in threads[WRITERS:]:
        t.join()
    elapsed = time.perf_counter() - start

    shared.validate()
    print(f"{WRITERS} writers + {READERS} readers finished in "
          f"{elapsed:.2f}s; tree holds {len(shared):,} entries (valid)")
    print(f"fast-path inserts: {shared.fast_path_inserts:,}, "
          f"exclusive inserts: {shared.exclusive_inserts:,}")
    print(f"concurrent lookups served: {sum(lookup_counts):,}")

    # Modeled scaling (the Fig. 13 shape) from measured service times.
    single = QuITTree(TreeConfig(leaf_capacity=64, internal_capacity=64))
    t0 = time.perf_counter()
    for key in keys:
        single.insert(key, key)
    insert_time = (time.perf_counter() - t0) / N
    profile = insert_profile(
        insert_time, single.stats.fast_insert_fraction
    )
    print("\nmodeled insert throughput (ops/sec) vs threads:")
    for threads_n, ops in throughput_curve(profile).items():
        bar = "#" * int(ops / 100_000)
        print(f"  {threads_n:3d}: {ops:12,.0f} {bar}")
    t0 = time.perf_counter()
    for key in keys[:5000]:
        single.get(key)
    lookup_time = (time.perf_counter() - t0) / 5000
    print("modeled lookup throughput (ops/sec) vs threads:")
    for threads_n, ops in throughput_curve(
        lookup_profile(lookup_time)
    ).items():
        bar = "#" * int(ops / 100_000)
        print(f"  {threads_n:3d}: {ops:12,.0f} {bar}")


if __name__ == "__main__":
    main()
