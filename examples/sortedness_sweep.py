#!/usr/bin/env python3
"""Sweep data sortedness (the BoDS K knob) and watch each fast-path
design react — a miniature of the paper's Figures 8-10.

Run:  python examples/sortedness_sweep.py
"""

from repro.core import (
    BPlusTree,
    LilBPlusTree,
    QuITTree,
    TailBPlusTree,
    TreeConfig,
)
from repro.analysis import lil_expected_fast_fraction
from repro.sortedness import generate_keys

N = 40_000
CONFIG = TreeConfig(leaf_capacity=64, internal_capacity=64)
K_GRID = (0.0, 0.01, 0.05, 0.10, 0.25, 0.50, 1.0)


def ingest(cls, keys):
    tree = cls(CONFIG)
    for k in keys:
        tree.insert(int(k), None)
    return tree


def main() -> None:
    print(f"ingesting {N:,} keys per configuration "
          f"(leaf capacity {CONFIG.leaf_capacity})\n")
    header = (
        f"{'K':>5s} | {'tail':>6s} {'lil':>6s} {'QuIT':>6s} "
        f"{'(Eq.1)':>7s} | {'B+occ':>6s} {'QuITocc':>7s}"
    )
    print(header)
    print("-" * len(header))
    for k in K_GRID:
        keys = generate_keys(N, k, 1.0, seed=7)
        tail = ingest(TailBPlusTree, keys)
        lil = ingest(LilBPlusTree, keys)
        quit_tree = ingest(QuITTree, keys)
        classical = ingest(BPlusTree, keys)
        print(
            f"{k:5.0%} |"
            f" {tail.stats.fast_insert_fraction:6.1%}"
            f" {lil.stats.fast_insert_fraction:6.1%}"
            f" {quit_tree.stats.fast_insert_fraction:6.1%}"
            f" {lil_expected_fast_fraction(k):7.1%} |"
            f" {classical.occupancy().avg_occupancy:6.1%}"
            f" {quit_tree.occupancy().avg_occupancy:7.1%}"
        )
    print(
        "\nReading the table: the tail fast path collapses almost "
        "immediately; lil tracks its (1-K)^2 model; QuIT stays closest "
        "to the ideal 1-K while also packing leaves far denser than the "
        "classical B+-tree."
    )


if __name__ == "__main__":
    main()
