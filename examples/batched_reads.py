#!/usr/bin/env python3
"""Batched reads: hand the tree probe batches instead of single keys.

``get_many`` sorts each probe batch, descends once per locality run, and
drains consecutive probes along the interlinked leaf chain — on
near-sorted probe streams this is several times faster than a per-key
``get`` loop, with identical results.  ``range_iter`` streams a range
scan lazily so an abandoned scan never walks the whole chain, and
``count_range`` counts without materializing.

Run:  python examples/batched_reads.py
"""

import time

from repro import BPlusTree, QuITTree, TreeConfig
from repro.sortedness import generate_keys

N = 50_000
READ_BATCH_SIZE = 4096


def main() -> None:
    # The paper's default near-sorted shape: 5% of keys displaced by up
    # to 5% of the stream length.  The probe stream replays the arrival
    # order — the read phase of a mixed workload.
    keys = [int(k) for k in generate_keys(N, 0.05, 0.05, seed=42)]
    config = TreeConfig(leaf_capacity=64, internal_capacity=64)
    tree = BPlusTree(config)
    tree.insert_many([(k, k) for k in keys])

    # Per-key baseline.
    start = time.perf_counter()
    per_key_out = [tree.get(k) for k in keys]
    per_key_s = time.perf_counter() - start

    # Same probes, batched: chunk the stream and call get_many.
    start = time.perf_counter()
    batched_out = []
    for lo in range(0, len(keys), READ_BATCH_SIZE):
        batched_out.extend(tree.get_many(keys[lo : lo + READ_BATCH_SIZE]))
    batched_s = time.perf_counter() - start

    assert batched_out == per_key_out
    print(f"{N:,} probes, K=5% L=5%, batches of {READ_BATCH_SIZE}")
    print(f"per-key get : {per_key_s:.3f}s")
    print(
        f"get_many    : {batched_s:.3f}s "
        f"({per_key_s / batched_s:.1f}x faster, identical answers)"
    )

    # The read counters show how the work collapsed: almost every probe
    # was served by advancing along the leaf chain instead of a fresh
    # root-to-leaf descent.
    stats = tree.stats
    print(
        f"\n{stats.read_batches:,} batches: "
        f"{stats.read_chain_hits:,} probes served off the leaf chain, "
        f"{stats.read_redescents:,} re-descents"
    )

    # Fast-path variants also answer point reads from the cached leaf's
    # key window without descending at all.
    quit_tree = QuITTree(config)
    quit_tree.insert_many([(k, k) for k in keys])
    tail = keys[-200:]  # newest keys: many fall in QuIT's cached leaf
    for k in tail:
        quit_tree.get(k)
    qstats = quit_tree.stats
    print(
        f"QuIT: {qstats.read_fast_hits:,} of {len(tail):,} recent probes "
        f"answered from the fast-path window"
    )

    # Lazy range scans: take a few entries and abandon the iterator —
    # the chain walk stops where you stop.
    it = tree.range_iter(1_000, 40_000)
    first_three = [next(it) for _ in range(3)]
    print(f"\nrange_iter(1000, 40000) first 3: {first_three}")
    print(f"count_range(1000, 40000) = {tree.count_range(1_000, 40_000):,}")


if __name__ == "__main__":
    main()
