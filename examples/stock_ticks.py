#!/usr/bin/env python3
"""Index a stream of stock-market closing prices (the paper's §5.5
scenario): real-world data with implicit, hard-to-quantify sortedness.

Every index variant ingests the same synthetic NIFTY-like minute-bar
series; the script reports ingestion time, fast-path utilization and
memory footprint, then runs a query mix.

Run:  python examples/stock_ticks.py
"""

import time
from dataclasses import replace

from repro.core import (
    BPlusTree,
    LilBPlusTree,
    QuITTree,
    TailBPlusTree,
    TreeConfig,
)
from repro.sware import SABPlusTree
from repro.workloads import NIFTY_SPEC, instrument_keys


def main() -> None:
    spec = replace(NIFTY_SPEC, n=60_000)
    keys = [int(k) for k in instrument_keys(spec)]
    print(
        f"instrument {spec.name}: {len(keys):,} one-minute bars, "
        f"prices composited into unique integer keys"
    )

    config = TreeConfig(leaf_capacity=64, internal_capacity=64)
    contenders = {
        "B+-tree": BPlusTree(config),
        "tail-B+-tree": TailBPlusTree(config),
        "lil-B+-tree": LilBPlusTree(config),
        "QuIT": QuITTree(config),
        "SWARE": SABPlusTree(config, buffer_capacity=len(keys) // 100),
    }

    print(f"\n{'index':14s} {'ingest':>9s} {'speedup':>8s} "
          f"{'fast-path':>10s} {'memory':>10s}")
    base_seconds = None
    for name, index in contenders.items():
        start = time.perf_counter()
        for key in keys:
            index.insert(key, key)
        elapsed = time.perf_counter() - start
        if base_seconds is None:
            base_seconds = elapsed
        stats = index.stats
        fast = (
            f"{stats.fast_insert_fraction:9.1%}"
            if stats.inserts else "   (buff.)"
        )
        memory = index.memory_bytes() / 1024
        print(
            f"{name:14s} {elapsed:8.2f}s {base_seconds / elapsed:7.2f}x "
            f"{fast} {memory:8.0f}KB"
        )

    # Query phase: recent-price point lookups + a price-band scan.
    quit_index = contenders["QuIT"]
    recent = keys[-1000:]
    start = time.perf_counter()
    for key in recent:
        assert quit_index.get(key) == key
    lookup_us = (time.perf_counter() - start) / len(recent) * 1e6
    print(f"\nQuIT point lookups on the freshest 1000 ticks: "
          f"{lookup_us:.1f} us/op")

    lo, hi = min(keys), max(keys)
    band = lo + (hi - lo) // 2
    width = (hi - lo) // 100
    matches = quit_index.range_query(band, band + width)
    print(
        f"price-band scan (~1% of the key domain): "
        f"{len(matches):,} entries, "
        f"{quit_index.stats.leaf_accesses:,} leaf accesses so far"
    )


if __name__ == "__main__":
    main()
