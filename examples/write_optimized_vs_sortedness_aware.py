#!/usr/bin/env python3
"""Write-optimized vs sortedness-aware (the paper's §6 distinction).

A Bε-tree amortizes *every* insert through message batching; QuIT
accelerates only what the data's sortedness allows.  Sweeping sortedness
shows the two philosophies diverge: the Bε-tree's per-insert work is
flat across K while QuIT's traversal count tracks 1-K.

Run:  python examples/write_optimized_vs_sortedness_aware.py
"""

import time

from repro.betree import BeTree, BeTreeConfig
from repro.core import BPlusTree, QuITTree, TreeConfig
from repro.sortedness import generate_keys

N = 40_000
TREE_CFG = TreeConfig(leaf_capacity=64, internal_capacity=64)
BE_CFG = BeTreeConfig(leaf_capacity=64, fanout=8, buffer_capacity=256)


def main() -> None:
    print(f"{'K':>5s} | {'B+ us/op':>9s} | {'Be us/op':>9s} "
          f"{'msg hops':>9s} | {'QuIT us/op':>10s} {'fast path':>10s}")
    for k in (0.0, 0.05, 0.25, 1.0):
        keys = [int(x) for x in generate_keys(N, k, 1.0, seed=13)]

        bt = BPlusTree(TREE_CFG)
        start = time.perf_counter()
        for key in keys:
            bt.insert(key, key)
        bt_us = (time.perf_counter() - start) / N * 1e6

        be = BeTree(BE_CFG)
        start = time.perf_counter()
        for key in keys:
            be.insert(key, key)
        be_us = (time.perf_counter() - start) / N * 1e6
        hops = be.stats.messages_moved / N

        qt = QuITTree(TREE_CFG)
        start = time.perf_counter()
        for key in keys:
            qt.insert(key, key)
        qt_us = (time.perf_counter() - start) / N * 1e6

        print(
            f"{k:5.0%} | {bt_us:9.2f} | {be_us:9.2f} {hops:9.2f} | "
            f"{qt_us:10.2f} {qt.stats.fast_insert_fraction:10.1%}"
        )

    print(
        "\nThe Be-tree's columns barely move with K — its batching is "
        "oblivious to arrival order.  QuIT's cost tracks sortedness: "
        "near-sorted streams ride the fast path, scrambled ones pay "
        "B+-tree prices.  (In C++ the Be-tree's flat cost would sit "
        "below the B+-tree's; in Python its per-message bookkeeping "
        "shows up directly — the shape, not the constant, is the "
        "point.)"
    )


if __name__ == "__main__":
    main()
