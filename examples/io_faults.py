#!/usr/bin/env python3
"""I/O fault tolerance: retries, read-only degradation, and the scrub.

The durability stack routes every file operation through the
``repro.testing.iofaults`` shim, so this script can make the "disk"
misbehave on demand and show each layer of the defence:

1. a transient EIO burst is absorbed by retry/backoff — callers never
   see it, the health monitor counts it;
2. a persistent ENOSPC exhausts the retries: the tree degrades to
   READ_ONLY (mutations refused fast, reads keep serving) until a
   checkpoint on the freed disk restores it;
3. silent bit rot in a closed WAL segment is caught by the scrubber's
   CRC pass, quarantined as evidence, and repaired from the live tree.

Run:  python examples/io_faults.py
"""

import shutil
import tempfile
from pathlib import Path

from repro import QuITTree, TreeConfig
from repro.core import DurableTree, ReadOnlyError, Scrubber
from repro.core.durable import WAL_DIRNAME
from repro.core.wal import segment_paths
from repro.testing import iofaults

N = 5_000


def main() -> None:
    state_dir = Path(tempfile.mkdtemp(prefix="quit-iofaults-"))
    config = TreeConfig(leaf_capacity=64, internal_capacity=64)
    try:
        tree = DurableTree(
            QuITTree(config), state_dir, fsync="always",
            segment_bytes=4 * 1024,
        )
        tree.insert_many([(i, f"row-{i}") for i in range(N)])
        print(f"ingested {N:,} rows, health={tree.health.state.value}")

        # ------------------------------------------- 1. transient EIO
        iofaults.arm("io.wal.write", "eio", times=3)
        for i in range(N, N + 100):
            tree.insert(i, f"row-{i}")  # never sees the fault
        iofaults.disarm("io.wal.write")
        print(f"EIO burst absorbed: {tree.health.retries} retries, "
              f"health={tree.health.state.value}")

        # -------------------------------------- 2. disk full -> READ_ONLY
        iofaults.arm("io.wal.fsync", "enospc")
        refused = 0
        try:
            for i in range(N + 100, N + 200):
                tree.insert(i, f"row-{i}")
        except ReadOnlyError:
            refused += 1
        for i in range(N + 100, N + 200):  # further writes refused fast
            try:
                tree.insert(i, f"row-{i}")
            except ReadOnlyError:
                refused += 1
        probe = tree.get(42)
        print(f"ENOSPC: degraded to {tree.health.state.value}, "
              f"{refused} mutations refused, reads still serve "
              f"(key 42 -> {probe!r})")
        iofaults.disarm("io.wal.fsync")  # operator freed space
        tree.checkpoint()  # proves the disk writable; restores health
        print(f"checkpoint healed the tree: "
              f"health={tree.health.state.value}, "
              f"recoveries={tree.health.recoveries}")

        # ------------------------------ 3. bit rot -> scrub + repair
        for i in range(N + 200, N + 1_200):
            tree.insert(i, f"late-{i}")  # individual WAL records
        closed = segment_paths(state_dir / WAL_DIRNAME)[:-1]
        victim = closed[len(closed) // 2]
        data = bytearray(victim.read_bytes())
        data[len(data) // 2] ^= 0xFF  # one flipped bit on the medium
        victim.write_bytes(bytes(data))

        scrubber = Scrubber(tree)
        report = scrubber.scrub_once(full=True)
        print(f"scrub: {len(report.issues)} corruption(s) in "
              f"{report.segments_checked} closed segment(s); "
              f"quarantined {len(report.quarantined)}, "
              f"repaired={report.repaired}")
        assert scrubber.scrub_once(full=True).clean

        # ------------------------------------------------ the receipts
        expected = dict(tree.items())
        tree.close()
        recovered, recovery = DurableTree.recover(
            state_dir, QuITTree, config
        )
        assert recovery.clean
        assert dict(recovered.items()) == expected
        print(f"cold recovery clean: {len(recovered):,} rows, every "
              f"acknowledged write intact")
        recovered.close()
    finally:
        iofaults.reset()
        shutil.rmtree(state_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
