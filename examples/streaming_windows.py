#!/usr/bin/env python3
"""Streaming / time-series ingestion (the paper's §6 applicability
claim): events arrive roughly by timestamp but with bounded arrival skew
— the situation where streaming systems interpose a reorder buffer.

QuIT absorbs the skew directly: in-order events ride the fast path, the
skewed fraction surfaces as top-inserts, and no extra buffer (with its
query penalty) is needed.  The script simulates event streams with
increasing arrival skew and shows the fast-path fraction degrading
gracefully while windowed range queries stay cheap.

Run:  python examples/streaming_windows.py
"""

import numpy as np

from repro.core import QuITTree, TreeConfig
from repro.sortedness import kl_sortedness

N_EVENTS = 40_000
WINDOW = 1_000  # query window, in event-time units


def skewed_event_stream(n: int, max_skew: int, seed: int) -> np.ndarray:
    """Event timestamps 0..n-1 permuted by bounded arrival skew: each
    event arrives within ``max_skew`` positions of its true slot (the
    classic out-of-order streaming model)."""
    rng = np.random.default_rng(seed)
    slots = np.arange(n) + rng.uniform(0, max_skew + 1e-9, size=n)
    return np.argsort(slots, kind="stable").astype(np.int64)


def main() -> None:
    config = TreeConfig(leaf_capacity=64, internal_capacity=64)
    print(f"{'max skew':>9s} {'measured K':>11s} {'fast-path':>10s} "
          f"{'resets':>7s} {'win. scan leaves':>17s}")
    for max_skew in (0, 4, 32, 256, 2048):
        stream = skewed_event_stream(N_EVENTS, max_skew, seed=9)
        measured = kl_sortedness(stream[:10_000].tolist())
        index = QuITTree(config)
        for ts in stream:
            index.insert(int(ts), f"event@{ts}")

        # Tumbling-window queries over event time (e.g. per-window
        # aggregation after ingestion).
        index.stats.leaf_accesses = 0
        windows = 0
        for start in range(0, N_EVENTS, WINDOW):
            index.range_query(start, start + WINDOW)
            windows += 1
        leaves_per_window = index.stats.leaf_accesses / windows

        print(
            f"{max_skew:9d} {measured.k_fraction:11.2%} "
            f"{index.stats.fast_insert_fraction:10.1%} "
            f"{index.stats.pole_resets:7d} {leaves_per_window:17.1f}"
        )
    print(
        "\nBounded arrival skew keeps most events on the fast path: the "
        "index itself absorbs the disorder that streaming systems "
        "usually buffer for, and event-time window scans stay "
        "proportional to window size."
    )


if __name__ == "__main__":
    main()
